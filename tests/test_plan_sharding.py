"""Tests for the run_plan correctness batch and the sharded farm layer.

Covers the intra-plan duplicate-hash fix (execute once, fan the record out),
failure reporting that names the failing spec, the ``executed/pending
(+cached)`` progress accounting, the O_APPEND single-write JSONL sink under
concurrent appenders, hash-ownership plan sharding, and the idempotent
shard-file merge — including the acceptance check that a 3-shard farm run,
merged, is bit-identical in metrics to one single-process ``run_plan``.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.exceptions import PlanExecutionError, ProblemError, SolverError
from repro.run import (
    ExperimentPlan,
    RunSpec,
    register_benchmark,
    run_plan,
    unregister_benchmark,
)
from repro.run import plan as plan_module
from repro.run.jsonl import JsonlSink, load_jsonl_records
from repro.run.plan import merge_records, shard_owner, shard_plan
from repro.service import merge_shards, run_shard, shard_path
from repro.service.shard import main as shard_main
from test_run_api import deterministic_metrics, tiny_problem

BENCH = "shard-tiny-one-hot"


@pytest.fixture
def tiny_benchmark():
    register_benchmark(BENCH, tiny_problem, replace=True)
    yield BENCH
    unregister_benchmark(BENCH)


def make_spec(seed: int = 0, label: "str | None" = None) -> RunSpec:
    return RunSpec(
        solver="choco-q", benchmark=BENCH, config={"num_layers": 1},
        seed=seed, shots=64, max_iterations=6, label=label,
    )


def farm_plan(seeds=(0, 1, 2, 3, 4, 5)) -> ExperimentPlan:
    return ExperimentPlan.grid(
        solvers=("choco-q", "cyclic-qaoa"),
        benchmarks=[BENCH],
        seeds=seeds,
        configs={name: {"num_layers": 1} for name in ("choco-q", "cyclic-qaoa")},
        shots=64,
        max_iterations=6,
        name="farm",
    )


# ---------------------------------------------------------------------------
# Duplicate-hash specs inside one plan
# ---------------------------------------------------------------------------


class TestDuplicateSpecs:
    def test_duplicate_hash_executes_once_and_fans_out(
        self, tiny_benchmark, monkeypatch
    ):
        executed = []
        real_execute = plan_module.execute_spec

        def counting(spec):
            executed.append(spec.content_hash())
            return real_execute(spec)

        monkeypatch.setattr(plan_module, "execute_spec", counting)
        # Same computation under three labels plus one genuinely new spec.
        plan = ExperimentPlan(specs=[
            make_spec(seed=0, label="first"),
            make_spec(seed=0, label="second"),
            make_spec(seed=1),
            make_spec(seed=0, label="third"),
        ])
        records = run_plan(plan)
        assert len(executed) == 2  # one per unique content hash
        assert len(records) == 4  # but every index got its record
        first, second, other, third = records
        assert first.spec_hash == second.spec_hash == third.spec_hash
        assert other.spec_hash != first.spec_hash
        # Fan-out copies share the payload but keep their own labelled spec.
        assert second.result == first.result and second.metrics == first.metrics
        assert [r.spec.label for r in records] == ["first", "second", None, "third"]

    def test_duplicate_hash_written_once_to_jsonl(self, tiny_benchmark, tmp_path):
        path = tmp_path / "plan.jsonl"
        plan = ExperimentPlan(specs=[make_spec(seed=0, label="a"),
                                     make_spec(seed=0, label="b")])
        run_plan(plan, jsonl_path=path)
        assert len(path.read_text().splitlines()) == 1


# ---------------------------------------------------------------------------
# Failure reporting
# ---------------------------------------------------------------------------


class TestFailureReporting:
    @pytest.fixture
    def broken_benchmark(self):
        def broken():
            raise ProblemError("factory exploded")

        register_benchmark("broken-bench", broken, replace=True)
        yield "broken-bench"
        unregister_benchmark("broken-bench")

    def test_sequential_failure_names_the_spec(
        self, tiny_benchmark, broken_benchmark
    ):
        bad = RunSpec(solver="choco-q", benchmark=broken_benchmark,
                      seed=0, label="the-culprit")
        plan = ExperimentPlan(specs=[make_spec(seed=0), bad])
        with pytest.raises(PlanExecutionError) as excinfo:
            run_plan(plan)
        assert "the-culprit" in str(excinfo.value)
        assert bad.content_hash() in str(excinfo.value)
        assert excinfo.value.failures == [{
            "display_name": "the-culprit",
            "spec_hash": bad.content_hash(),
            "error": "factory exploded",
        }]
        assert isinstance(excinfo.value.__cause__, ProblemError)

    def test_parallel_collects_every_failure(
        self, tiny_benchmark, broken_benchmark, tmp_path
    ):
        bad = [
            RunSpec(solver="choco-q", benchmark=broken_benchmark, seed=seed)
            for seed in (0, 1)
        ]
        plan = ExperimentPlan(specs=[make_spec(seed=0), *bad, make_spec(seed=1)])
        path = tmp_path / "plan.jsonl"
        with pytest.raises(PlanExecutionError) as excinfo:
            run_plan(plan, max_workers=2, jsonl_path=path)
        assert len(excinfo.value.failures) == 2
        assert {f["spec_hash"] for f in excinfo.value.failures} == {
            spec.content_hash() for spec in bad
        }
        # Both healthy specs still reached the sink before the raise.
        assert len(load_jsonl_records(path)) == 2


# ---------------------------------------------------------------------------
# Progress accounting
# ---------------------------------------------------------------------------


class TestProgress:
    def test_progress_separates_executed_from_cached(
        self, tiny_benchmark, tmp_path, capsys
    ):
        path = tmp_path / "plan.jsonl"
        warm = ExperimentPlan(specs=[make_spec(seed=0)], name="probe")
        run_plan(warm, jsonl_path=path)
        plan = ExperimentPlan(
            specs=[make_spec(seed=0), make_spec(seed=1), make_spec(seed=2)],
            name="probe",
        )
        capsys.readouterr()
        run_plan(plan, jsonl_path=path, progress=True)
        lines = capsys.readouterr().out.strip().splitlines()
        # Pre-existing cache hits are not this run's completions: two lines,
        # counting executed out of *pending*, with the hits shown separately.
        assert lines == [
            "[probe] executed 1/2 (+1 cached) choco-q@shard-tiny-one-hot",
            "[probe] executed 2/2 (+1 cached) choco-q@shard-tiny-one-hot",
        ]


# ---------------------------------------------------------------------------
# JSONL sink: O_APPEND single-write appends
# ---------------------------------------------------------------------------


def _append_worker(path: str, worker: int, count: int, padding: int) -> None:
    with JsonlSink(path) as sink:
        for index in range(count):
            sink.append({"worker": worker, "index": index, "pad": "x" * padding})


class TestJsonlSink:
    def test_append_writes_one_line_per_record(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        with JsonlSink(path) as sink:
            sink.append({"spec_hash": "aa", "value": 1})
            sink.append({"spec_hash": "bb", "value": 2})
        assert len(path.read_text().splitlines()) == 2
        assert set(load_jsonl_records(path)) == {"aa", "bb"}

    def test_concurrent_appends_never_split_records(self, tmp_path):
        """Forked appenders interleave lines, never bytes within a line.

        The padding pushes each record well past typical buffered-IO chunk
        sizes; with the old write+flush sink this reliably produced torn
        lines, with O_APPEND single-write appends every line parses.
        """
        path = tmp_path / "stress.jsonl"
        context = multiprocessing.get_context("fork")
        workers, count, padding = 4, 50, 9000
        processes = [
            context.Process(
                target=_append_worker, args=(str(path), worker, count, padding)
            )
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        lines = path.read_text().splitlines()
        assert len(lines) == workers * count
        seen = set()
        for line in lines:
            payload = json.loads(line)  # a torn line would raise here
            assert len(payload["pad"]) == padding
            seen.add((payload["worker"], payload["index"]))
        assert len(seen) == workers * count


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------


class TestShardPlan:
    def test_shards_partition_the_resolved_plan(self, tiny_benchmark):
        plan = farm_plan(seeds=(None,) * 6)  # derived seeds must not break this
        resolved = {spec.content_hash() for spec in plan.resolved_specs()}
        shards = [shard_plan(plan, 3, index) for index in range(3)]
        shard_hashes = [
            {spec.content_hash() for spec in shard.specs} for shard in shards
        ]
        assert set().union(*shard_hashes) == resolved
        assert sum(len(hashes) for hashes in shard_hashes) == len(resolved)
        assert shards[0].name == "farm-shard0of3"

    def test_ownership_is_a_pure_function_of_the_hash(self):
        assert shard_owner("00000000000000ff", 4) == 0xFF % 4
        for num_shards in (1, 2, 3, 7):
            owners = {shard_owner(f"{value:016x}", num_shards) for value in range(64)}
            assert owners <= set(range(num_shards))

    def test_shard_validation(self, tiny_benchmark):
        plan = farm_plan()
        with pytest.raises(SolverError, match="num_shards"):
            shard_plan(plan, 0, 0)
        with pytest.raises(SolverError, match="shard_index"):
            shard_plan(plan, 3, 3)

    def test_three_shard_farm_matches_single_process_run(
        self, tiny_benchmark, tmp_path
    ):
        """The acceptance check: shard, run, merge == one run_plan."""
        plan = farm_plan()
        single = run_plan(plan)

        shard_dir = tmp_path / "shards"
        for index in range(3):
            run_shard(plan, 3, index, shard_dir)
        merged_path = tmp_path / "merged.jsonl"
        merged = merge_shards(shard_dir, output_path=merged_path)
        assert len(merged) == len(plan)

        # Replaying the full plan against the merged file re-executes
        # nothing and returns records bit-identical in metrics.
        replay = run_plan(plan, jsonl_path=merged_path)
        assert all(record.cached for record in replay)
        assert [deterministic_metrics(r) for r in replay] == [
            deterministic_metrics(r) for r in single
        ]

    def test_rerunning_a_shard_resumes_from_its_file(
        self, tiny_benchmark, tmp_path, monkeypatch
    ):
        plan = farm_plan()
        shard_dir = tmp_path / "shards"
        first = run_shard(plan, 3, 0, shard_dir)

        def forbidden(spec):  # pragma: no cover - failing is the assertion
            raise AssertionError("resumed shard re-executed a cached spec")

        monkeypatch.setattr(plan_module, "execute_spec", forbidden)
        second = run_shard(plan, 3, 0, shard_dir)
        assert len(second) == len(first)
        assert all(record.cached for record in second)


class TestMergeRecords:
    def _write_jsonl(self, path, payloads):
        with JsonlSink(path) as sink:
            for payload in payloads:
                sink.append(payload)

    def test_merge_is_idempotent_with_overlapping_files(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._write_jsonl(a, [{"spec_hash": "h1", "value": 1},
                              {"spec_hash": "h2", "value": 2}])
        # b overlaps a on h2 (identical payload: content-addressed records)
        # and adds h3.
        self._write_jsonl(b, [{"spec_hash": "h2", "value": 2},
                              {"spec_hash": "h3", "value": 3}])
        once = merge_records([a, b])
        assert set(once) == {"h1", "h2", "h3"}
        assert merge_records([a, b, a, b]) == once
        # Merged output re-merged with the inputs is still a fixed point.
        merged_path = tmp_path / "merged.jsonl"
        merge_records([a, b], output_path=merged_path)
        assert merge_records([merged_path, a, b]) == once

    def test_missing_paths_are_skipped(self, tmp_path):
        a = tmp_path / "a.jsonl"
        self._write_jsonl(a, [{"spec_hash": "h1"}])
        assert set(merge_records([a, tmp_path / "never-written.jsonl"])) == {"h1"}

    def test_merge_shards_requires_shard_files(self, tmp_path):
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError, match="no shard files"):
            merge_shards(tmp_path)


# ---------------------------------------------------------------------------
# Plan serialization + shard CLI
# ---------------------------------------------------------------------------


class TestPlanSerialization:
    def test_plan_round_trips_through_dict(self, tiny_benchmark):
        plan = farm_plan(seeds=(0, None))
        restored = ExperimentPlan.from_dict(plan.to_dict())
        assert restored.name == plan.name
        assert restored.base_seed == plan.base_seed
        assert restored.specs == plan.specs
        # Derived seeds resolve identically on both sides of the wire.
        assert [s.seed for s in restored.resolved_specs()] == [
            s.seed for s in plan.resolved_specs()
        ]

    def test_shard_cli_run_and_merge(self, tiny_benchmark, tmp_path, capsys):
        plan = farm_plan(seeds=(0,))
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan.to_dict()))
        shard_dir = tmp_path / "shards"
        for index in range(2):
            assert shard_main([
                "run", "--plan", str(plan_file),
                "--num-shards", "2", "--shard-index", str(index),
                "--directory", str(shard_dir),
            ]) == 0
            assert os.path.exists(shard_path(shard_dir, 2, index))
        merged_path = tmp_path / "merged.jsonl"
        assert shard_main([
            "merge", "--directory", str(shard_dir), "--output", str(merged_path),
        ]) == 0
        assert len(load_jsonl_records(merged_path)) == len(plan)
        assert f"merged {len(plan)} record(s)" in capsys.readouterr().out
