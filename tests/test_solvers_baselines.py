"""Tests for the baseline solvers: penalty QAOA, cyclic QAOA, HEA."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import expm

from solver_factories import make_cyclic_solver, make_one_hot_problem
from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import SolverError
from repro.solvers.cyclic_qaoa import (
    CyclicQAOASolver,
    chain_hop_edges,
    summation_chains,
)
from repro.solvers.hea import HEASolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.penalty_qaoa import PenaltyQAOASolver
from repro.solvers.variational import EngineOptions

FAST = EngineOptions(shots=1024, seed=7)
FAST_OPTIMIZER = CobylaOptimizer(max_iterations=60)


class TestPenaltyQAOA:
    def test_solves_small_problem(self, small_min_problem):
        solver = PenaltyQAOASolver(num_layers=3, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        metrics = result.metrics(small_min_problem)
        # The soft-constraint encoding should put non-trivial mass on the
        # optimum of a 3-variable instance.
        assert metrics.success_rate > 0.1
        assert 0.0 <= metrics.in_constraints_rate <= 1.0

    def test_in_constraints_below_one_in_general(self, paper_example_problem):
        solver = PenaltyQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(paper_example_problem)
        metrics = result.metrics(paper_example_problem)
        # Soft constraints leak probability outside the feasible space.
        assert metrics.in_constraints_rate < 1.0

    def test_result_bookkeeping(self, small_min_problem):
        solver = PenaltyQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        assert result.solver_name == "penalty-qaoa"
        assert result.num_qubits == 3
        assert result.transpiled_depth >= result.circuit_depth > 0
        assert result.metadata["iterations"] == result.trace.num_iterations
        assert result.latency.total > 0.0

    def test_invalid_layers(self):
        with pytest.raises(SolverError):
            PenaltyQAOASolver(num_layers=0)

    def test_frozen_hotspots_reduce_search(self, paper_example_problem):
        solver = PenaltyQAOASolver(
            num_layers=2, freeze_hotspots=1, optimizer=FAST_OPTIMIZER, options=FAST
        )
        result = solver.solve(paper_example_problem)
        assert len(result.metadata["frozen_variables"]) == 1

    def test_penalty_weight_override(self, small_min_problem):
        solver = PenaltyQAOASolver(
            num_layers=2, penalty_weight=3.0, optimizer=FAST_OPTIMIZER, options=FAST
        )
        result = solver.solve(small_min_problem)
        assert result.metadata["penalty_weight"] == pytest.approx(3.0)

    def test_circuit_uses_rx_mixer(self, small_min_problem):
        solver = PenaltyQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        assert result.num_two_qubit_gates > 0


class TestCyclicQAOA:
    def test_summation_chain_detection(self, paper_example_problem):
        chains, unencoded = summation_chains(paper_example_problem)
        # x0 - x2 = 0 is not summation format; x0 + x1 + x3 = 1 is.
        assert chains == [[0, 1, 3]]
        assert unencoded == [0]

    def test_chains_cannot_share_variables(self):
        problem = ConstrainedBinaryProblem(
            3,
            Objective.from_linear([1.0, 1.0, 1.0]),
            [
                LinearConstraint((1.0, 1.0, 0.0), 1.0),
                LinearConstraint((0.0, 1.0, 1.0), 1.0),
            ],
        )
        chains, unencoded = summation_chains(problem)
        assert chains == [[0, 1]]
        assert unencoded == [1]

    def test_preserves_encoded_constraint(self):
        """With a single summation constraint the driver conserves it exactly."""
        problem = make_one_hot_problem()
        solver = CyclicQAOASolver(num_layers=3, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(problem)
        metrics = result.metrics(problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)
        assert metrics.success_rate > 0.2

    def test_ring_closure_edges(self):
        """Chains of >= 3 close into a ring; a length-2 chain stays one edge.

        The degenerate 2-ring's edges coincide, so a naive closure would
        emit the same hop twice per layer and double the mixing angle.
        """
        assert chain_hop_edges([4, 7]) == [(4, 7)]
        assert chain_hop_edges([0, 1, 3]) == [(0, 1), (1, 3), (3, 0)]
        assert chain_hop_edges([2, 4, 5, 6]) == [(2, 4), (4, 5), (5, 6), (6, 2)]

    def test_two_qubit_hop_matches_matrix_exponential(self):
        """Regression: the 2-qubit hop is e^{-i b (XX+YY)}, applied once.

        Under the old treat-as-cyclic behavior the length-2 chain picked up
        its wrap-around twin edge, squaring the hop unitary per layer.
        """
        problem = make_one_hot_problem(weights=(1.0, 2.0), name="pair")
        spec = CyclicQAOASolver(num_layers=1, optimizer=FAST_OPTIMIZER, options=FAST).build_spec(
            problem
        )
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        y = np.array([[0, -1j], [1j, 0]], dtype=complex)
        hop = np.kron(x, x) + np.kron(y, y)
        for beta in (0.3, -1.1, 2.4):
            # gamma = 0 isolates the driver layer from the phase separation.
            evolved = spec.evolve(np.array([0.0, beta]))
            expected = expm(-1j * beta * hop) @ spec.initial_state
            assert np.max(np.abs(evolved - expected)) < 1e-12

    @pytest.mark.parametrize("backend", ["subspace", "auto"])
    def test_subspace_backend_matches_dense(self, paper_example_problem, backend):
        """At any fixed parameters the two layouts give the same distribution.

        (Post-optimization states are compared in
        test_cross_backend_equivalence.py; here we pin the layout-level
        invariant that does not depend on the optimizer's trajectory.)
        """
        from repro.solvers.variational import DenseStateBackend

        dense_spec = make_cyclic_solver("dense").build_spec(paper_example_problem)
        sub_spec = make_cyclic_solver(backend).build_spec(paper_example_problem)
        assert sub_spec.backend is not None
        rng = np.random.default_rng(3)
        for _ in range(3):
            parameters = rng.uniform(-np.pi, np.pi, size=4)
            dense_dist = DenseStateBackend(4).exact_distribution(dense_spec.evolve(parameters))
            sub_dist = sub_spec.backend.exact_distribution(sub_spec.evolve(parameters))
            keys = set(dense_dist) | set(sub_dist)
            for key in keys:
                assert dense_dist.get(key, 0.0) == pytest.approx(
                    sub_dist.get(key, 0.0), abs=1e-9
                )

    def test_subspace_size_is_encoded_sector(self, paper_example_problem):
        """The map covers the encoded rows only, not the full feasible set.

        For the paper example the chain x0 + x1 + x3 = 1 is encoded and
        x0 - x2 = 0 is not, so |F_enc| = 3 choices x 2 free values of x2.
        """
        result = make_cyclic_solver("subspace").solve(paper_example_problem)
        assert result.metadata["subspace_size"] == 6
        assert result.metadata["encoded_chains"] == [[0, 1, 3]]

    def test_subspace_falls_back_without_encodable_chain(self):
        problem = ConstrainedBinaryProblem(
            3,
            Objective.from_linear([1.0, 2.0, 3.0]),
            [LinearConstraint((1.0, -1.0, 0.0), 0.0)],
            sense="min",
        )
        with pytest.warns(UserWarning, match="falls back to dense"):
            result = make_cyclic_solver("subspace").solve(problem)
        assert result.metadata["state_backend"] == "dense"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SolverError):
            CyclicQAOASolver(backend="sparse")

    def test_metadata_reports_encoding(self, paper_example_problem):
        solver = CyclicQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(paper_example_problem)
        assert result.metadata["encoded_chains"] == [[0, 1, 3]]
        assert result.metadata["unencoded_constraints"] == [0]

    def test_circuit_contains_xy_terms(self, paper_example_problem):
        solver = CyclicQAOASolver(num_layers=1, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(paper_example_problem)
        assert result.circuit_depth > 0

    def test_invalid_layers(self):
        with pytest.raises(SolverError):
            CyclicQAOASolver(num_layers=0)


class TestHEA:
    def test_solves_tiny_problem(self, small_min_problem):
        solver = HEASolver(num_layers=2, optimizer=CobylaOptimizer(max_iterations=150), options=FAST)
        result = solver.solve(small_min_problem)
        metrics = result.metrics(small_min_problem)
        assert metrics.success_rate >= 0.0
        assert result.solver_name == "hea"
        assert result.num_qubits == 3

    def test_parameter_count(self, small_min_problem):
        solver = HEASolver(num_layers=3, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        assert result.optimal_parameters is not None
        assert len(result.optimal_parameters) == 3 * (3 + 1)

    def test_shallow_depth_compared_to_qaoa(self, paper_example_problem):
        hea = HEASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST).solve(
            paper_example_problem
        )
        qaoa = PenaltyQAOASolver(num_layers=7, optimizer=FAST_OPTIMIZER, options=FAST).solve(
            paper_example_problem
        )
        assert hea.transpiled_depth < qaoa.transpiled_depth

    def test_invalid_layers(self):
        with pytest.raises(SolverError):
            HEASolver(num_layers=0)
