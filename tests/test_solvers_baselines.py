"""Tests for the baseline solvers: penalty QAOA, cyclic QAOA, HEA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import SolverError
from repro.solvers.cyclic_qaoa import CyclicQAOASolver, summation_chains
from repro.solvers.hea import HEASolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.penalty_qaoa import PenaltyQAOASolver
from repro.solvers.variational import EngineOptions

FAST = EngineOptions(shots=1024, seed=7)
FAST_OPTIMIZER = CobylaOptimizer(max_iterations=60)


class TestPenaltyQAOA:
    def test_solves_small_problem(self, small_min_problem):
        solver = PenaltyQAOASolver(num_layers=3, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        metrics = result.metrics(small_min_problem)
        # The soft-constraint encoding should put non-trivial mass on the
        # optimum of a 3-variable instance.
        assert metrics.success_rate > 0.1
        assert 0.0 <= metrics.in_constraints_rate <= 1.0

    def test_in_constraints_below_one_in_general(self, paper_example_problem):
        solver = PenaltyQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(paper_example_problem)
        metrics = result.metrics(paper_example_problem)
        # Soft constraints leak probability outside the feasible space.
        assert metrics.in_constraints_rate < 1.0

    def test_result_bookkeeping(self, small_min_problem):
        solver = PenaltyQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        assert result.solver_name == "penalty-qaoa"
        assert result.num_qubits == 3
        assert result.transpiled_depth >= result.circuit_depth > 0
        assert result.metadata["iterations"] == result.trace.num_iterations
        assert result.latency.total > 0.0

    def test_invalid_layers(self):
        with pytest.raises(SolverError):
            PenaltyQAOASolver(num_layers=0)

    def test_frozen_hotspots_reduce_search(self, paper_example_problem):
        solver = PenaltyQAOASolver(
            num_layers=2, freeze_hotspots=1, optimizer=FAST_OPTIMIZER, options=FAST
        )
        result = solver.solve(paper_example_problem)
        assert len(result.metadata["frozen_variables"]) == 1

    def test_penalty_weight_override(self, small_min_problem):
        solver = PenaltyQAOASolver(
            num_layers=2, penalty_weight=3.0, optimizer=FAST_OPTIMIZER, options=FAST
        )
        result = solver.solve(small_min_problem)
        assert result.metadata["penalty_weight"] == pytest.approx(3.0)

    def test_circuit_uses_rx_mixer(self, small_min_problem):
        solver = PenaltyQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        assert result.num_two_qubit_gates > 0


class TestCyclicQAOA:
    def test_summation_chain_detection(self, paper_example_problem):
        chains, unencoded = summation_chains(paper_example_problem)
        # x0 - x2 = 0 is not summation format; x0 + x1 + x3 = 1 is.
        assert chains == [[0, 1, 3]]
        assert unencoded == [0]

    def test_chains_cannot_share_variables(self):
        problem = ConstrainedBinaryProblem(
            3,
            Objective.from_linear([1.0, 1.0, 1.0]),
            [
                LinearConstraint((1.0, 1.0, 0.0), 1.0),
                LinearConstraint((0.0, 1.0, 1.0), 1.0),
            ],
        )
        chains, unencoded = summation_chains(problem)
        assert chains == [[0, 1]]
        assert unencoded == [1]

    def test_preserves_encoded_constraint(self):
        """With a single summation constraint the driver conserves it exactly."""
        problem = ConstrainedBinaryProblem(
            3,
            Objective.from_linear([2.0, 1.0, 3.0]),
            [LinearConstraint((1.0, 1.0, 1.0), 1.0)],
            sense="min",
        )
        solver = CyclicQAOASolver(num_layers=3, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(problem)
        metrics = result.metrics(problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)
        assert metrics.success_rate > 0.2

    def test_metadata_reports_encoding(self, paper_example_problem):
        solver = CyclicQAOASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(paper_example_problem)
        assert result.metadata["encoded_chains"] == [[0, 1, 3]]
        assert result.metadata["unencoded_constraints"] == [0]

    def test_circuit_contains_xy_terms(self, paper_example_problem):
        solver = CyclicQAOASolver(num_layers=1, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(paper_example_problem)
        assert result.circuit_depth > 0

    def test_invalid_layers(self):
        with pytest.raises(SolverError):
            CyclicQAOASolver(num_layers=0)


class TestHEA:
    def test_solves_tiny_problem(self, small_min_problem):
        solver = HEASolver(num_layers=2, optimizer=CobylaOptimizer(max_iterations=150), options=FAST)
        result = solver.solve(small_min_problem)
        metrics = result.metrics(small_min_problem)
        assert metrics.success_rate >= 0.0
        assert result.solver_name == "hea"
        assert result.num_qubits == 3

    def test_parameter_count(self, small_min_problem):
        solver = HEASolver(num_layers=3, optimizer=FAST_OPTIMIZER, options=FAST)
        result = solver.solve(small_min_problem)
        assert result.optimal_parameters is not None
        assert len(result.optimal_parameters) == 3 * (3 + 1)

    def test_shallow_depth_compared_to_qaoa(self, paper_example_problem):
        hea = HEASolver(num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST).solve(
            paper_example_problem
        )
        qaoa = PenaltyQAOASolver(num_layers=7, optimizer=FAST_OPTIMIZER, options=FAST).solve(
            paper_example_problem
        )
        assert hea.transpiled_depth < qaoa.transpiled_depth

    def test_invalid_layers(self):
        with pytest.raises(SolverError):
            HEASolver(num_layers=0)
