"""Tests for the statevector simulator, including property-based checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.parameters import Parameter
from repro.qcircuit.statevector import (
    Statevector,
    StatevectorSimulator,
    apply_matrix,
    bitstring_to_index,
    index_to_bitstring,
)


class TestStatevectorConstruction:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.data[0] == 1.0
        assert np.sum(np.abs(state.data)) == pytest.approx(1.0)

    def test_from_bitstring_little_endian(self):
        state = Statevector.from_bitstring([1, 0, 1])
        assert np.argmax(np.abs(state.data)) == 0b101  # q0=1, q2=1 -> index 5

    def test_from_bitstring_rejects_non_binary(self):
        with pytest.raises(SimulationError):
            Statevector.from_bitstring([0, 2])

    def test_uniform_superposition(self):
        state = Statevector.uniform_superposition(3)
        assert np.allclose(state.probabilities(), 1.0 / 8)

    def test_bitstring_roundtrip(self):
        for index in range(16):
            bits = index_to_bitstring(index, 4)
            assert bitstring_to_index(bits) == index


class TestStatevectorOperations:
    def test_probability_of(self):
        state = Statevector.from_bitstring([0, 1])
        assert state.probability_of([0, 1]) == pytest.approx(1.0)
        assert state.probability_of([1, 1]) == pytest.approx(0.0)

    def test_expectation_diagonal(self):
        state = Statevector.uniform_superposition(2)
        diagonal = np.array([0.0, 1.0, 2.0, 3.0])
        assert state.expectation_diagonal(diagonal) == pytest.approx(1.5)

    def test_support_size(self):
        state = Statevector.uniform_superposition(3)
        assert state.support_size() == 8
        assert Statevector.zero_state(3).support_size() == 1

    def test_support_size_shares_simulator_tolerance(self):
        from repro.qcircuit.statevector import (
            DEFAULT_SUPPORT_TOLERANCE,
            state_support_size,
        )

        amplitudes = np.array([1.0, np.sqrt(DEFAULT_SUPPORT_TOLERANCE) / 2], dtype=complex)
        # The raw-array helper and the Statevector method apply one rule.
        state = Statevector(data=amplitudes, num_qubits=1)
        assert state_support_size(amplitudes) == state.support_size() == 1
        assert state_support_size(amplitudes, tolerance=0.0) == 2

    def test_sample_counts_total(self, rng):
        state = Statevector.uniform_superposition(2)
        counts = state.sample_counts(100, rng=rng)
        assert sum(counts.values()) == 100

    def test_fidelity_of_identical_states(self):
        state = Statevector.uniform_superposition(2)
        assert state.fidelity(state) == pytest.approx(1.0)

    def test_to_dict_sparse(self):
        state = Statevector.from_bitstring([1, 0])
        assert state.to_dict() == {"10": pytest.approx(1.0 + 0j)}


class TestSimulator:
    def test_bell_state(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        state = simulator.statevector(circuit)
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(state.data, expected, atol=1e-10)

    def test_ghz_state(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        probabilities = simulator.statevector(circuit).probabilities()
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[7] == pytest.approx(0.5)

    def test_gate_on_nonadjacent_qubits(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.x(0).cx(0, 2)
        state = simulator.statevector(circuit)
        assert np.argmax(np.abs(state.data)) == 0b101

    def test_initial_state_bits(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        state = simulator.statevector(circuit, initial_state=[1, 0])
        assert np.argmax(np.abs(state.data)) == 3

    def test_parameterized_circuit_requires_bindings(self, simulator):
        beta = Parameter("beta")
        circuit = QuantumCircuit(1)
        circuit.rx(beta, 0)
        with pytest.raises(SimulationError):
            simulator.run(circuit)
        result = simulator.run(circuit, parameter_values={beta: np.pi})
        assert result.statevector.probabilities()[1] == pytest.approx(1.0)

    def test_qubit_limit_enforced(self):
        simulator = StatevectorSimulator(max_qubits=3)
        with pytest.raises(SimulationError):
            simulator.run(QuantumCircuit(4))

    def test_support_trace_recording(self):
        simulator = StatevectorSimulator(record_support=True)
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        result = simulator.run(circuit)
        assert result.support_trace == [2, 4]

    def test_measure_and_barrier_are_ignored(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.h(0).barrier().measure_all()
        state = simulator.statevector(circuit)
        assert state.probabilities()[0] == pytest.approx(0.5)

    def test_norm_preserved_by_random_circuit(self, simulator, rng):
        circuit = QuantumCircuit(4)
        for _ in range(30):
            kind = rng.integers(0, 4)
            qubit = int(rng.integers(0, 4))
            other = int((qubit + 1 + rng.integers(0, 3)) % 4)
            if kind == 0:
                circuit.h(qubit)
            elif kind == 1:
                circuit.rz(float(rng.normal()), qubit)
            elif kind == 2:
                circuit.cx(qubit, other)
            else:
                circuit.rx(float(rng.normal()), qubit)
        state = simulator.statevector(circuit)
        assert np.linalg.norm(state.data) == pytest.approx(1.0, abs=1e-9)


class TestApplyMatrix:
    def test_matches_full_kron_for_single_qubit(self, rng):
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        # Apply H on qubit 1 of 3.
        result = apply_matrix(state, h, [1], 3)
        full = np.kron(np.eye(2), np.kron(h, np.eye(2)))
        assert np.allclose(result, full @ state, atol=1e-10)

    def test_matches_full_kron_for_two_qubit_reversed_operands(self, rng):
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        cx = np.array([[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex)
        # control = qubit 2, target = qubit 0.
        result = apply_matrix(state, cx, [2, 0], 3)
        # Build the expected operator by explicit basis mapping.
        full = np.zeros((8, 8), dtype=complex)
        for index in range(8):
            control = (index >> 2) & 1
            target = index & 1
            new_target = target ^ control
            new_index = (index & 0b010) | (control << 2) | new_target
            full[new_index, index] = 1.0
        assert np.allclose(result, full @ state, atol=1e-10)

    def test_shape_mismatch_raises(self):
        with pytest.raises(SimulationError):
            apply_matrix(np.zeros(4, dtype=complex), np.eye(2), [0, 1], 2)


@settings(max_examples=25, deadline=None)
@given(
    angles=st.lists(st.floats(-np.pi, np.pi, allow_nan=False), min_size=3, max_size=3),
    qubit=st.integers(min_value=0, max_value=2),
)
def test_property_rotation_composition(angles, qubit):
    """Applying RZ rotations sequentially equals applying their sum."""
    simulator = StatevectorSimulator()
    circuit_a = QuantumCircuit(3)
    circuit_a.h(qubit)
    for angle in angles:
        circuit_a.rz(angle, qubit)
    circuit_b = QuantumCircuit(3)
    circuit_b.h(qubit)
    circuit_b.rz(float(sum(angles)), qubit)
    state_a = simulator.statevector(circuit_a).data
    state_b = simulator.statevector(circuit_b).data
    assert np.allclose(state_a, state_b, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(bits=st.lists(st.integers(0, 1), min_size=2, max_size=6))
def test_property_basis_state_roundtrip(bits):
    """from_bitstring puts all probability mass on the encoded index."""
    state = Statevector.from_bitstring(bits)
    index = bitstring_to_index(bits)
    probabilities = state.probabilities()
    assert probabilities[index] == pytest.approx(1.0)
    assert np.sum(probabilities) == pytest.approx(1.0)
