"""Tests for the gate library: matrices, unitarity, inverses and arities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GateError
from repro.qcircuit.gates import (
    Gate,
    mcp_gate,
    mcx_gate,
    standard_gate,
    unitary_gate,
)
from repro.qcircuit.parameters import Parameter

SINGLE_QUBIT_NAMES = ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"]
ROTATION_NAMES = ["rx", "ry", "rz", "p"]
TWO_QUBIT_NAMES = ["cx", "cz", "swap"]
TWO_QUBIT_ROTATIONS = ["cp", "rxx", "ryy", "rzz"]


def is_unitary(matrix: np.ndarray) -> bool:
    return np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]), atol=1e-10)


class TestStandardGates:
    @pytest.mark.parametrize("name", SINGLE_QUBIT_NAMES)
    def test_single_qubit_gates_are_unitary(self, name):
        gate = standard_gate(name)
        assert gate.num_qubits == 1
        assert is_unitary(gate.to_matrix())

    @pytest.mark.parametrize("name", ROTATION_NAMES)
    def test_rotations_are_unitary(self, name):
        gate = standard_gate(name, 0.7)
        assert is_unitary(gate.to_matrix())

    @pytest.mark.parametrize("name", TWO_QUBIT_NAMES + TWO_QUBIT_ROTATIONS)
    def test_two_qubit_gates_are_unitary(self, name):
        params = (0.5,) if name in TWO_QUBIT_ROTATIONS else ()
        gate = standard_gate(name, *params)
        assert gate.num_qubits == 2
        assert is_unitary(gate.to_matrix())

    def test_unknown_gate_raises(self):
        with pytest.raises(GateError):
            standard_gate("frobnicate")

    def test_wrong_parameter_count_raises(self):
        with pytest.raises(GateError):
            standard_gate("rx")
        with pytest.raises(GateError):
            standard_gate("h", 0.3)

    def test_x_matrix(self):
        assert np.allclose(standard_gate("x").to_matrix(), [[0, 1], [1, 0]])

    def test_h_matrix(self):
        h = standard_gate("h").to_matrix()
        assert np.allclose(h, np.array([[1, 1], [1, -1]]) / np.sqrt(2))

    def test_rz_is_diagonal(self):
        rz = standard_gate("rz", 0.9).to_matrix()
        assert np.allclose(rz, np.diag(np.diag(rz)))

    def test_cx_flips_target_when_control_set(self):
        # local index = control + 2 * target
        cx = standard_gate("cx").to_matrix()
        state = np.zeros(4)
        state[1] = 1.0  # control=1, target=0
        out = cx @ state
        assert np.argmax(np.abs(out)) == 3  # control=1, target=1

    def test_rx_rotation_angle(self):
        rx = standard_gate("rx", np.pi).to_matrix()
        # RX(pi) = -i X
        assert np.allclose(rx, -1j * np.array([[0, 1], [1, 0]]), atol=1e-10)


class TestMultiControlledGates:
    def test_mcx_matrix_flips_only_all_ones_controls(self):
        gate = mcx_gate(2)
        matrix = gate.to_matrix()
        assert matrix.shape == (8, 8)
        # controls are local bits 0,1; target bit 2
        state = np.zeros(8)
        state[3] = 1.0  # both controls set, target 0
        assert np.argmax(np.abs(matrix @ state)) == 7
        state = np.zeros(8)
        state[1] = 1.0  # only one control set
        assert np.argmax(np.abs(matrix @ state)) == 1

    def test_mcp_phases_only_all_ones(self):
        gate = mcp_gate(2, 0.8)
        matrix = gate.to_matrix()
        diag = np.diag(matrix)
        assert np.allclose(matrix, np.diag(diag))
        assert np.isclose(diag[-1], np.exp(1j * 0.8))
        assert np.allclose(diag[:-1], 1.0)

    def test_mcx_requires_controls(self):
        with pytest.raises(GateError):
            mcx_gate(0)

    def test_mcp_with_symbolic_parameter_defers_matrix(self):
        beta = Parameter("beta")
        gate = mcp_gate(2, beta)
        assert gate.is_parameterized
        with pytest.raises(GateError):
            gate.to_matrix()
        bound = gate.bind({beta: 0.3})
        assert not bound.is_parameterized
        assert is_unitary(bound.to_matrix())


class TestInverses:
    @pytest.mark.parametrize(
        "name,params",
        [("h", ()), ("x", ()), ("s", ()), ("t", ()), ("rz", (0.4,)), ("rx", (1.1,)),
         ("cx", ()), ("cz", ()), ("cp", (0.6,)), ("rzz", (0.8,)), ("swap", ())],
    )
    def test_gate_times_inverse_is_identity(self, name, params):
        gate = standard_gate(name, *params)
        product = gate.to_matrix() @ gate.inverse().to_matrix()
        assert np.allclose(product, np.eye(product.shape[0]), atol=1e-10)

    def test_mcp_inverse_negates_angle(self):
        gate = mcp_gate(2, 0.5)
        product = gate.to_matrix() @ gate.inverse().to_matrix()
        assert np.allclose(product, np.eye(8), atol=1e-10)

    def test_unitary_gate_inverse(self):
        rng = np.random.default_rng(0)
        random = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        q, _ = np.linalg.qr(random)
        gate = unitary_gate(q)
        product = gate.to_matrix() @ gate.inverse().to_matrix()
        assert np.allclose(product, np.eye(4), atol=1e-10)


class TestUnitaryGate:
    def test_rejects_non_unitary(self):
        with pytest.raises(GateError):
            unitary_gate(np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(GateError):
            unitary_gate(np.ones((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(GateError):
            unitary_gate(np.eye(3))

    def test_accepts_identity(self):
        gate = unitary_gate(np.eye(8))
        assert gate.num_qubits == 3


class TestGateDataclass:
    def test_zero_qubit_gate_rejected(self):
        with pytest.raises(GateError):
            Gate("x", 0)

    def test_unitary_without_matrix_rejected(self):
        with pytest.raises(GateError):
            Gate("unitary", 1)

    def test_bind_is_noop_for_constant_gates(self):
        gate = standard_gate("rz", 0.7)
        assert gate.bind({}) is gate
