"""Tests for the shared variational engine, solver result types and latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import MetricsReport
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.noise import IBM_FEZ, IBM_OSAKA, NoiseModel
from repro.solvers.base import LatencyBreakdown, OptimizationTrace, SolverResult
from repro.solvers.latency import LatencyModel
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import (
    AnsatzSpec,
    EngineOptions,
    VariationalEngine,
    apply_cz_chain,
    apply_rx_layer,
    apply_ry,
    basis_state,
    uniform_state,
)
from repro.qcircuit.sampling import SampleResult


class TestStateHelpers:
    def test_basis_state(self):
        state = basis_state(3, [0, 1, 1])
        assert np.argmax(np.abs(state)) == 6

    def test_uniform_state(self):
        state = uniform_state(2)
        assert np.allclose(np.abs(state) ** 2, 0.25)

    def test_apply_rx_layer_matches_circuit(self, simulator):
        beta = 0.7
        state = apply_rx_layer(uniform_state(2), beta, 2)
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).rx(2 * beta, 0).rx(2 * beta, 1)
        expected = simulator.statevector(circuit).data
        assert np.allclose(state, expected, atol=1e-10)

    def test_apply_ry_matches_circuit(self, simulator):
        theta = 1.1
        state = apply_ry(basis_state(2, [0, 0]), 1, theta)
        circuit = QuantumCircuit(2)
        circuit.ry(theta, 1)
        assert np.allclose(state, simulator.statevector(circuit).data, atol=1e-10)

    def test_apply_cz_chain_matches_circuit(self, simulator):
        state = apply_cz_chain(uniform_state(3), 3)
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).h(2).cz(0, 1).cz(1, 2)
        assert np.allclose(state, simulator.statevector(circuit).data, atol=1e-10)


def _toy_spec() -> AnsatzSpec:
    """A 1-parameter, 1-qubit ansatz whose optimum is a pure |1> state."""
    cost = np.array([1.0, 0.0])

    def evolve(parameters: np.ndarray) -> np.ndarray:
        return apply_ry(basis_state(1, [0]), 0, float(parameters[0]))

    def build_circuit(parameters: np.ndarray) -> QuantumCircuit:
        circuit = QuantumCircuit(1)
        circuit.ry(float(parameters[0]), 0)
        return circuit

    return AnsatzSpec(
        name="toy",
        num_qubits=1,
        initial_state=basis_state(1, [0]),
        cost_diagonal=cost,
        evolve=evolve,
        build_circuit=build_circuit,
        initial_parameters=np.array([0.3]),
    )


class TestVariationalEngine:
    def test_optimizes_toy_ansatz(self, small_min_problem):
        engine = VariationalEngine(CobylaOptimizer(max_iterations=60), EngineOptions(shots=256, seed=1))
        result = engine.run(_toy_spec(), small_min_problem)
        assert result.metadata["final_cost"] < 0.05
        # Final distribution concentrates on |1>.
        assert result.distribution().get("1", 0.0) > 0.9

    def test_noisy_execution_path(self, small_min_problem):
        noise = NoiseModel(IBM_OSAKA, seed=2)
        engine = VariationalEngine(
            CobylaOptimizer(max_iterations=20),
            EngineOptions(shots=128, seed=1, noise_model=noise, noisy_trajectories=4),
        )
        result = engine.run(_toy_spec(), small_min_problem)
        assert result.exact_distribution is None
        assert sum(result.outcomes.counts.values()) > 0

    def test_latency_components_populated(self, small_min_problem):
        engine = VariationalEngine(CobylaOptimizer(max_iterations=10), EngineOptions(shots=64))
        result = engine.run(_toy_spec(), small_min_problem)
        assert result.latency.compilation > 0.0
        assert result.latency.quantum_execution > 0.0
        assert result.latency.total == pytest.approx(
            result.latency.compilation
            + result.latency.quantum_execution
            + result.latency.classical_processing
        )


class TestLatencyModel:
    def test_two_qubit_gates_dominate(self):
        model = LatencyModel(IBM_FEZ)
        single = QuantumCircuit(2)
        for _ in range(10):
            single.h(0)
        double = QuantumCircuit(2)
        for _ in range(10):
            double.cx(0, 1)
        assert model.circuit_duration(double) > model.circuit_duration(single)

    def test_ecr_devices_are_slower(self):
        circuit = QuantumCircuit(2)
        for _ in range(5):
            circuit.cx(0, 1)
        assert LatencyModel(IBM_OSAKA).circuit_duration(circuit) > LatencyModel(
            IBM_FEZ
        ).circuit_duration(circuit)

    def test_estimate_scales_with_iterations_and_circuits(self):
        model = LatencyModel(IBM_FEZ)
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        base = model.estimate(circuit, iterations=10, shots=100, compilation_seconds=0.1)
        doubled = model.estimate(circuit, iterations=20, shots=100, compilation_seconds=0.1)
        multi = model.estimate(
            circuit, iterations=10, shots=100, compilation_seconds=0.1, num_circuits=2
        )
        assert doubled.quantum_execution == pytest.approx(2 * base.quantum_execution)
        assert multi.quantum_execution == pytest.approx(2 * base.quantum_execution)
        assert base.total > 0.1


class TestResultTypes:
    def test_optimization_trace(self):
        trace = OptimizationTrace()
        trace.record(3.0, np.array([0.0]))
        trace.record(1.0, np.array([1.0]))
        assert trace.num_iterations == 2
        assert trace.best_cost == pytest.approx(1.0)
        assert trace.iterations_to_reach(2.0) == 1
        assert trace.iterations_to_reach(0.5) is None

    def test_latency_breakdown_dict(self):
        breakdown = LatencyBreakdown(compilation=1.0, quantum_execution=2.0, classical_processing=0.5)
        as_dict = breakdown.as_dict()
        assert as_dict["total_s"] == pytest.approx(3.5)

    def test_solver_result_metrics(self, paper_example_problem):
        result = SolverResult(
            solver_name="stub",
            problem_name=paper_example_problem.name,
            outcomes=SampleResult.from_counts({"1010": 10}),
        )
        report = result.metrics(paper_example_problem)
        assert isinstance(report, MetricsReport)
        assert report.success_rate == pytest.approx(1.0)

    def test_distribution_prefers_exact(self):
        result = SolverResult(
            solver_name="stub",
            problem_name="p",
            outcomes=SampleResult.from_counts({"0": 1}),
            exact_distribution={"1": 1.0},
        )
        assert result.distribution() == {"1": 1.0}
