"""Tests for the commute Hamiltonian: Eq. (5), Lemma 1, Lemma 2, Algorithm 1.

These are the core correctness properties of the paper's contribution:

* H_c(u) hops between the two feasible patterns v / v-bar (Eq. 12);
* [H_c(u), C_hat] = 0 whenever C u = 0 (the constraint-conservation
  foundation of Fig. 1b);
* the serialized driver conserves every constraint expectation even though it
  differs from the monolithic unitary (Lemma 1);
* the G/P decomposition is *exactly* equal to the local unitary (Lemma 2),
  for every support pattern, including after transpilation to basic gates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.exceptions import HamiltonianError
from repro.hamiltonian.commute import CommuteDriver, CommuteHamiltonianTerm
from repro.hamiltonian.constraint_operator import constraint_operator_diagonal
from repro.hamiltonian.evolution import driver_evolution_operator, term_evolution_operator
from repro.qcircuit.statevector import Statevector, StatevectorSimulator
from repro.qcircuit.transpile import transpile
from repro.testing import global_phase_equal, random_statevector

PAPER_U1 = (-1, 1, -1, 0)
PAPER_U2 = (0, -1, 0, 1)
PAPER_CONSTRAINT = (1.0, 1.0, 0.0, 1.0)  # satisfies C u = 0 for both vectors


class TestTermStructure:
    def test_rejects_invalid_entries(self):
        with pytest.raises(HamiltonianError):
            CommuteHamiltonianTerm((0, 2, 0))

    def test_rejects_all_zero(self):
        with pytest.raises(HamiltonianError):
            CommuteHamiltonianTerm((0, 0, 0))

    def test_support_and_v_bits(self):
        term = CommuteHamiltonianTerm(PAPER_U1)
        assert term.support == (0, 1, 2)
        assert term.v_bits == (0, 1, 0)
        assert term.v_bar_bits == (1, 0, 1)
        assert term.num_nonzero == 3

    def test_matrix_is_hermitian_hop(self):
        term = CommuteHamiltonianTerm((1, -1))
        matrix = term.to_matrix()
        assert np.allclose(matrix, matrix.conj().T)
        # Hop between |01> (q0=0, q1=1 -> index 2) and |10> (index 1).
        assert matrix[1, 2] == pytest.approx(1.0)
        assert matrix[2, 1] == pytest.approx(1.0)
        assert np.count_nonzero(matrix) == 2

    def test_eigenstates_have_correct_eigenvalues(self):
        term = CommuteHamiltonianTerm(PAPER_U1)
        matrix = term.to_matrix()
        plus = term.eigenstate(+1)
        minus = term.eigenstate(-1)
        assert np.allclose(matrix @ plus, plus)
        assert np.allclose(matrix @ minus, -minus)

    def test_pauli_expansion_matches_matrix(self):
        for u in [PAPER_U1, PAPER_U2, (1,), (1, 1, -1)]:
            term = CommuteHamiltonianTerm(u)
            assert np.allclose(term.to_pauli_sum().to_matrix(), term.to_matrix(), atol=1e-10)


class TestCommutation:
    def test_terms_commute_with_satisfied_constraint(self):
        driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
        assert driver.commutes_with_constraint(PAPER_CONSTRAINT)

    def test_terms_do_not_commute_with_violated_constraint(self):
        driver = CommuteDriver.from_solutions([PAPER_U1])
        assert not driver.commutes_with_constraint((1.0, 0.0, 0.0, 0.0))

    def test_pauli_level_commutation(self):
        from repro.hamiltonian.constraint_operator import constraint_operator

        term = CommuteHamiltonianTerm(PAPER_U1)
        operator = constraint_operator(PAPER_CONSTRAINT)
        assert term.to_pauli_sum().commutes_with(operator)


class TestEvolution:
    @pytest.mark.parametrize("u", [PAPER_U1, PAPER_U2, (1, -1), (1, 1, 1, -1)])
    @pytest.mark.parametrize("beta", [0.0, 0.8, -1.3])
    def test_apply_evolution_matches_expm(self, u, beta):
        term = CommuteHamiltonianTerm(u)
        state = random_statevector(term.num_qubits, seed=1)
        expected = expm(-1j * beta * term.to_matrix()) @ state
        assert np.allclose(term.apply_evolution(state, beta), expected, atol=1e-10)

    def test_apply_evolution_size_mismatch(self):
        term = CommuteHamiltonianTerm((1, -1))
        with pytest.raises(HamiltonianError):
            term.apply_evolution(np.zeros(8, dtype=complex), 0.1)

    def test_evolution_preserves_norm(self):
        term = CommuteHamiltonianTerm(PAPER_U1)
        state = random_statevector(4, seed=2)
        evolved = term.apply_evolution(state, 0.77)
        assert np.linalg.norm(evolved) == pytest.approx(1.0)


class TestLemma1Serialization:
    def test_serialized_conserves_constraint_expectation(self):
        driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
        diagonal = constraint_operator_diagonal(PAPER_CONSTRAINT, 4)
        state = random_statevector(4, seed=3)
        initial_expectation = float(np.dot(np.abs(state) ** 2, diagonal))
        serialized = driver.apply_serialized(state.copy(), 0.9)
        serialized_expectation = float(np.dot(np.abs(serialized) ** 2, diagonal))
        assert serialized_expectation == pytest.approx(initial_expectation, abs=1e-9)

    def test_monolithic_also_conserves_and_differs(self):
        driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
        diagonal = constraint_operator_diagonal(PAPER_CONSTRAINT, 4)
        state = random_statevector(4, seed=4)
        initial_expectation = float(np.dot(np.abs(state) ** 2, diagonal))
        monolithic = driver_evolution_operator(driver, 0.9) @ state
        monolithic_expectation = float(np.dot(np.abs(monolithic) ** 2, diagonal))
        serialized = driver.apply_serialized(state.copy(), 0.9)
        assert monolithic_expectation == pytest.approx(initial_expectation, abs=1e-9)
        # Serialization is NOT the same unitary (e^{A+B} != e^A e^B) ...
        assert not np.allclose(serialized, monolithic, atol=1e-6)
        # ... but both conserve the constraint expectation (Lemma 1).

    def test_feasible_state_stays_feasible(self):
        """Starting from a feasible basis state, all support stays feasible."""
        driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
        # x = (1, 0, 1, 0) satisfies x0 + x1 + x3 = 1 and x0 - x2 = 0.
        state = Statevector.from_bitstring([1, 0, 1, 0]).data
        evolved = driver.apply_serialized(state, 1.1)
        constraint_a = constraint_operator_diagonal((1, 0, -1, 0), 4)
        constraint_b = constraint_operator_diagonal((1, 1, 0, 1), 4)
        populated = np.nonzero(np.abs(evolved) ** 2 > 1e-12)[0]
        for index in populated:
            bits = [(index >> q) & 1 for q in range(4)]
            assert bits[0] - bits[2] == 0
            assert bits[0] + bits[1] + bits[3] == 1
        del constraint_a, constraint_b


class TestLemma2Decomposition:
    @pytest.mark.parametrize(
        "u", [(1,), (1, -1), (1, 1), PAPER_U1, PAPER_U2, (1, -1, 1, -1, 1), (0, 1, 0, -1, 1, 0)]
    )
    @pytest.mark.parametrize("beta", [0.6, -1.2])
    def test_decomposed_circuit_equals_exact_unitary(self, u, beta):
        term = CommuteHamiltonianTerm(u)
        simulator = StatevectorSimulator()
        state = random_statevector(term.num_qubits, seed=5)
        exact = term_evolution_operator(term, beta) @ state
        circuit = term.decomposed_circuit(beta)
        circuit_state = simulator.statevector(
            circuit,
            initial_state=Statevector(data=state.copy(), num_qubits=term.num_qubits),
        ).data
        assert global_phase_equal(exact, circuit_state)

    def test_decomposition_survives_transpilation(self):
        term = CommuteHamiltonianTerm(PAPER_U1)
        beta = 0.8
        simulator = StatevectorSimulator()
        state = random_statevector(4, seed=6)
        exact = term_evolution_operator(term, beta) @ state
        lowered = transpile(term.decomposed_circuit(beta))
        padded = np.zeros(2**lowered.num_qubits, dtype=complex)
        padded[:16] = state
        lowered_state = simulator.statevector(
            lowered, initial_state=Statevector(data=padded, num_qubits=lowered.num_qubits)
        ).data
        assert global_phase_equal(exact, lowered_state[:16])

    def test_converting_circuit_maps_eigenstates(self):
        """Algorithm 1: G maps |x+-> to the basis states |01...1> / |11...1>."""
        term = CommuteHamiltonianTerm(PAPER_U1)
        simulator = StatevectorSimulator()
        g_circuit = term.converting_circuit()
        for sign in (+1, -1):
            eigenstate = Statevector(data=term.eigenstate(sign), num_qubits=4)
            mapped = simulator.statevector(g_circuit, initial_state=eigenstate).data
            populated = np.nonzero(np.abs(mapped) ** 2 > 1e-9)[0]
            assert len(populated) == 1
            index = populated[0]
            support = term.support
            first = support[0]
            # All support qubits except the first must read 1.
            for qubit in support[1:]:
                assert (index >> qubit) & 1 == 1
            assert (index >> first) & 1 == (0 if sign == +1 else 1)

    def test_circuit_depth_linear_in_support(self):
        depths = []
        for size in (2, 4, 6, 8):
            u = tuple(1 if i % 2 == 0 else -1 for i in range(size))
            term = CommuteHamiltonianTerm(u)
            circuit = transpile(term.decomposed_circuit(0.5))
            depths.append(circuit.depth())
        increments = [b - a for a, b in zip(depths, depths[1:])]
        assert max(increments) <= 3 * max(1, min(increments))


class TestDriver:
    def test_requires_terms(self):
        with pytest.raises(HamiltonianError):
            CommuteDriver([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(HamiltonianError):
            CommuteDriver([CommuteHamiltonianTerm((1,)), CommuteHamiltonianTerm((1, -1))])

    def test_total_nonzeros(self):
        driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
        assert driver.total_nonzeros == 5

    def test_serialized_circuit_matches_serialized_evolution(self):
        driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
        beta = 0.7
        simulator = StatevectorSimulator()
        state = random_statevector(4, seed=8)
        expected = driver.apply_serialized(state.copy(), beta)
        circuit = driver.serialized_circuit(beta)
        circuit_state = simulator.statevector(
            circuit, initial_state=Statevector(data=state.copy(), num_qubits=4)
        ).data
        assert global_phase_equal(expected, circuit_state)

    def test_hamiltonian_matrix_is_sum_of_terms(self):
        driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
        total = sum(term.to_matrix() for term in driver.terms)
        assert np.allclose(driver.hamiltonian_matrix(), total)


@settings(max_examples=20, deadline=None)
@given(
    u=st.lists(st.sampled_from([-1, 0, 1]), min_size=2, max_size=5).filter(
        lambda entries: any(entries)
    ),
    beta=st.floats(-2.0, 2.0, allow_nan=False),
)
def test_property_decomposition_is_exact(u, beta):
    """Lemma 2 holds for arbitrary u vectors and angles."""
    term = CommuteHamiltonianTerm(tuple(u))
    state = random_statevector(term.num_qubits, seed=11)
    exact = expm(-1j * beta * term.to_matrix()) @ state
    fast = term.apply_evolution(state, beta)
    assert np.allclose(exact, fast, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(beta=st.floats(-2.0, 2.0, allow_nan=False), seed=st.integers(0, 1000))
def test_property_serialization_conserves_constraints(beta, seed):
    """Lemma 1 holds for random states and angles on the paper's example."""
    driver = CommuteDriver.from_solutions([PAPER_U1, PAPER_U2])
    diagonal = constraint_operator_diagonal(PAPER_CONSTRAINT, 4)
    state = random_statevector(4, seed=seed)
    before = float(np.dot(np.abs(state) ** 2, diagonal))
    after_state = driver.apply_serialized(state, beta)
    after = float(np.dot(np.abs(after_state) ** 2, diagonal))
    assert after == pytest.approx(before, abs=1e-8)
