"""End-to-end integration tests across the whole stack.

These exercise the full pipeline the paper's evaluation uses: build a
benchmark instance, run every solver, score with the Table-II metrics, and
check the qualitative relationships the paper reports (Choco-Q's 100%
in-constraints rate, its success-rate lead over the baselines, the
constraint-count trend of Fig. 8, and the noisy-hardware behaviour of
Fig. 10 on the smallest cases).
"""

from __future__ import annotations

import pytest

from repro import (
    ChocoQConfig,
    ChocoQSolver,
    CyclicQAOASolver,
    EngineOptions,
    HEASolver,
    PenaltyQAOASolver,
    make_benchmark,
)
from repro.qcircuit.noise import IBM_FEZ, NoiseModel
from repro.solvers.classical import BranchAndBoundSolver
from repro.solvers.optimizer import CobylaOptimizer

OPTIONS = EngineOptions(shots=2048, seed=11)
OPTIMIZER = CobylaOptimizer(max_iterations=60)


@pytest.fixture(scope="module")
def f1_problem():
    return make_benchmark("F1")


@pytest.fixture(scope="module")
def g1_problem():
    return make_benchmark("G1")


@pytest.fixture(scope="module")
def k1_problem():
    return make_benchmark("K1")


class TestTableTwoRelationships:
    @pytest.mark.parametrize("scale", ["F1", "G1", "K1"])
    def test_chocoq_beats_baselines_on_small_scales(self, scale):
        problem = make_benchmark(scale)
        _, optimal_value = problem.brute_force_optimum()
        choco = ChocoQSolver(
            config=ChocoQConfig(num_layers=2), optimizer=OPTIMIZER, options=OPTIONS
        ).solve(problem)
        penalty = PenaltyQAOASolver(num_layers=3, optimizer=OPTIMIZER, options=OPTIONS).solve(
            problem
        )
        hea = HEASolver(num_layers=2, optimizer=OPTIMIZER, options=OPTIONS).solve(problem)

        choco_metrics = choco.metrics(problem, optimal_value)
        penalty_metrics = penalty.metrics(problem, optimal_value)
        hea_metrics = hea.metrics(problem, optimal_value)

        assert choco_metrics.in_constraints_rate == pytest.approx(1.0)
        assert choco_metrics.success_rate >= penalty_metrics.success_rate
        assert choco_metrics.success_rate >= hea_metrics.success_rate
        assert choco_metrics.approximation_ratio_gap <= penalty_metrics.approximation_ratio_gap

    def test_quantum_optimum_matches_classical(self, f1_problem):
        classical = BranchAndBoundSolver().solve(f1_problem)
        result = ChocoQSolver(
            config=ChocoQConfig(num_layers=3), optimizer=OPTIMIZER, options=OPTIONS
        ).solve(f1_problem)
        best_key = max(result.distribution().items(), key=lambda item: item[1])[0]
        best_bits = tuple(int(ch) for ch in best_key[: f1_problem.num_variables])
        assert f1_problem.is_feasible(best_bits)
        assert f1_problem.evaluate(best_bits) == pytest.approx(classical.value)

    def test_cyclic_shines_on_summation_format(self, k1_problem):
        """Fig./Table II: the cyclic baseline does relatively well on KPP."""
        _, optimal_value = k1_problem.brute_force_optimum()
        cyclic = CyclicQAOASolver(num_layers=4, optimizer=OPTIMIZER, options=OPTIONS).solve(
            k1_problem
        )
        penalty = PenaltyQAOASolver(num_layers=4, optimizer=OPTIMIZER, options=OPTIONS).solve(
            k1_problem
        )
        cyclic_metrics = cyclic.metrics(k1_problem, optimal_value)
        penalty_metrics = penalty.metrics(k1_problem, optimal_value)
        assert cyclic_metrics.in_constraints_rate >= penalty_metrics.in_constraints_rate

    def test_success_decreases_with_scale_for_baselines(self):
        """Larger instances are harder for the penalty baseline (Table II trend)."""
        small = make_benchmark("F1")
        large = make_benchmark("F3")
        penalty_small = PenaltyQAOASolver(num_layers=2, optimizer=OPTIMIZER, options=OPTIONS).solve(small)
        penalty_large = PenaltyQAOASolver(num_layers=2, optimizer=OPTIMIZER, options=OPTIONS).solve(large)
        small_metrics = penalty_small.metrics(small)
        large_metrics = penalty_large.metrics(large)
        assert large_metrics.success_rate <= small_metrics.success_rate + 0.05


class TestNoisyExecution:
    def test_fez_noise_keeps_chocoq_ahead(self, g1_problem):
        """Fig. 10: under the Fez noise model Choco-Q still leads in-constraints rate."""
        noise_options = EngineOptions(
            shots=512, seed=3, noise_model=NoiseModel(IBM_FEZ, seed=3), noisy_trajectories=8
        )
        _, optimal_value = g1_problem.brute_force_optimum()
        choco = ChocoQSolver(
            config=ChocoQConfig(num_layers=1),
            optimizer=CobylaOptimizer(max_iterations=25),
            options=noise_options,
        ).solve(g1_problem)
        hea = HEASolver(
            num_layers=1, optimizer=CobylaOptimizer(max_iterations=25), options=noise_options
        ).solve(g1_problem)
        choco_metrics = choco.metrics(g1_problem, optimal_value)
        hea_metrics = hea.metrics(g1_problem, optimal_value)
        # Noise erodes the ideal 100%, but feasibility should stay clearly ahead.
        assert choco_metrics.in_constraints_rate > hea_metrics.in_constraints_rate
        assert choco_metrics.in_constraints_rate > 0.2


class TestEndToEndLatencyAccounting:
    def test_latency_fields_consistent(self, f1_problem):
        result = ChocoQSolver(
            config=ChocoQConfig(num_layers=1), optimizer=OPTIMIZER, options=OPTIONS
        ).solve(f1_problem)
        assert result.latency.total == pytest.approx(
            result.latency.compilation
            + result.latency.quantum_execution
            + result.latency.classical_processing
        )
        assert result.metadata["iterations"] > 0
        assert result.latency.quantum_execution > 0.0

    def test_variable_elimination_end_to_end(self, f1_problem):
        result = ChocoQSolver(
            config=ChocoQConfig(num_layers=2, num_eliminated_variables=1),
            optimizer=OPTIMIZER,
            options=OPTIONS,
        ).solve(f1_problem)
        metrics = result.metrics(f1_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)
        assert result.metadata["num_circuits"] >= 2
