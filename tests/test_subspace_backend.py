"""Dense-vs-subspace backend equivalence and the Opt3 sampling regressions.

The ``subspace`` backend must be an exact drop-in for the dense simulator:
identical evolved states (up to lifting), identical exact distributions, and
the same histogram format.  The elimination pipeline must conserve shots
exactly, decorrelate per-sub-instance RNG streams, and keep its metadata
through histogram merging.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from solver_factories import make_chocoq_solver as make_solver
from repro.core.problem import ConstrainedBinaryProblem, Objective
from repro.core.subspace import SubspaceMap
from repro.exceptions import SolverError
from repro.problems import make_benchmark
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import (
    DenseStateBackend,
    EngineOptions,
    SubspaceStateBackend,
)

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks"))

SEED_PROBLEMS = ("F1", "G1", "K1")


class TestBackendEquivalence:
    @pytest.mark.parametrize("case", SEED_PROBLEMS)
    def test_evolve_matches_dense_on_seed_problems(self, case):
        problem = make_benchmark(case)
        dense_spec, _ = make_solver("dense", num_layers=2).build_spec(problem)
        subspace_spec, _ = make_solver("subspace", num_layers=2).build_spec(problem)
        subspace_map = SubspaceMap.from_problem(problem)
        rng = np.random.default_rng(1)
        for _ in range(3):
            parameters = rng.uniform(-np.pi, np.pi, size=4)
            dense_state = dense_spec.evolve(parameters)
            lifted = subspace_map.lift_vector(subspace_spec.evolve(parameters))
            assert np.max(np.abs(dense_state - lifted)) < 1e-9

    @pytest.mark.parametrize("case", SEED_PROBLEMS)
    def test_solve_distributions_match_on_seed_problems(self, case):
        problem = make_benchmark(case)
        dense = make_solver("dense", num_layers=2).solve(problem)
        subspace = make_solver("subspace", num_layers=2).solve(problem)
        keys = set(dense.exact_distribution) | set(subspace.exact_distribution)
        for key in keys:
            assert dense.exact_distribution.get(key, 0.0) == pytest.approx(
                subspace.exact_distribution.get(key, 0.0), abs=1e-9
            )
        assert subspace.metadata["state_backend"] == "subspace"
        assert subspace.metadata["subspace_size"] == SubspaceMap.from_problem(problem).size

    def test_monolithic_driver_matches_dense(self, paper_example_problem):
        dense = make_solver("dense", num_layers=1, serialize_driver=False).solve(
            paper_example_problem
        )
        subspace = make_solver("subspace", num_layers=1, serialize_driver=False).solve(
            paper_example_problem
        )
        keys = set(dense.exact_distribution) | set(subspace.exact_distribution)
        for key in keys:
            assert dense.exact_distribution.get(key, 0.0) == pytest.approx(
                subspace.exact_distribution.get(key, 0.0), abs=1e-9
            )

    def test_subspace_samples_are_feasible(self, paper_example_problem):
        result = make_solver("subspace", num_layers=2).solve(paper_example_problem)
        metrics = result.metrics(paper_example_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)
        assert result.outcomes.shots == 1024

    def test_subspace_backend_requires_constraints(self):
        problem = ConstrainedBinaryProblem(3, Objective.from_linear([1.0, 1.0, 1.0]))
        with pytest.raises(SolverError):
            make_solver("subspace").solve(problem)

    def test_invalid_backend_rejected(self):
        with pytest.raises(SolverError):
            ChocoQConfig(backend="sparse")

    def test_auto_backend_picks_subspace_when_small(self, paper_example_problem):
        result = make_solver("auto", num_layers=2).solve(paper_example_problem)
        assert result.metadata["state_backend"] == "subspace"
        assert result.metadata["backend_requested"] == "auto"

    def test_auto_backend_falls_back_past_limit(self, paper_example_problem):
        # |F| = 3 for the paper example; a limit of 1 forces the dense path.
        result = make_solver("auto", num_layers=2, subspace_limit=1).solve(
            paper_example_problem
        )
        assert result.metadata["state_backend"] == "dense"

    def test_explicit_subspace_with_limit_raises(self, paper_example_problem):
        from repro.exceptions import SubspaceOverflowError

        with pytest.raises(SubspaceOverflowError):
            make_solver("subspace", num_layers=2, subspace_limit=1).solve(
                paper_example_problem
            )

    def test_invalid_subspace_limit_rejected(self):
        with pytest.raises(SolverError):
            ChocoQConfig(subspace_limit=0)

    def test_backend_objects_report_dimensions(self, paper_example_problem):
        subspace_map = SubspaceMap.from_problem(paper_example_problem)
        assert DenseStateBackend(4).dimension == 16
        assert SubspaceStateBackend(subspace_map).dimension == subspace_map.size


class TestEliminationSampling:
    def test_shot_conservation_with_remainder(self, paper_example_problem):
        """1001 shots over 2 sub-circuits must merge back to exactly 1001."""
        result = make_solver(
            "dense", shots=1001, num_layers=2, num_eliminated_variables=1
        ).solve(paper_example_problem)
        assert result.metadata["num_circuits"] == 2
        assert result.outcomes.shots == 1001
        assert sum(result.outcomes.counts.values()) == 1001
        assert sorted(result.metadata["shot_allocation"]) == [500, 501]

    @pytest.mark.parametrize("backend", ["dense", "subspace"])
    def test_shot_conservation_both_backends(self, paper_example_problem, backend):
        result = make_solver(
            backend, shots=777, num_layers=2, num_eliminated_variables=2
        ).solve(paper_example_problem)
        assert result.outcomes.shots == 777
        assert sum(result.outcomes.counts.values()) == 777

    def test_zero_shot_sub_instance_with_noise_model(self, paper_example_problem):
        """A sub-instance allotted 0 shots must not crash the noisy path."""
        from repro.qcircuit.noise import IBM_FEZ, NoiseModel

        solver = ChocoQSolver(
            config=ChocoQConfig(num_layers=1, num_eliminated_variables=1),
            optimizer=CobylaOptimizer(max_iterations=5),
            options=EngineOptions(
                shots=1,
                seed=2,
                noise_model=NoiseModel(IBM_FEZ, seed=3),
                noisy_trajectories=2,
            ),
        )
        result = solver.solve(paper_example_problem)
        assert result.metadata["num_circuits"] == 2
        assert result.metadata["shot_allocation"] == [1, 0]
        # Exact conservation is an ideal-path guarantee: NoiseModel.sample
        # itself rounds the budget up to one shot per trajectory
        # (pre-existing), so here we only require the run to complete and
        # the zero-shot instance to contribute nothing.
        annotations = result.outcomes.metadata["eliminated_assignments"]
        assert annotations[1]["shots"] == 0
        assert result.outcomes.shots >= 1

    def test_sub_instances_draw_distinct_samples(self, twin_problem):
        """Twin sub-instances share dynamics but must not share RNG streams."""
        result = make_solver(
            "dense", seed=3, shots=512, num_layers=1, num_eliminated_variables=1
        ).solve(twin_problem)
        conditional: dict[int, dict[str, int]] = {0: {}, 1: {}}
        for key, count in result.outcomes.counts.items():
            suffix = key[2:]
            conditional[int(key[0])][suffix] = (
                conditional[int(key[0])].get(suffix, 0) + count
            )
        # Under the old shared-seed bug both sub-circuits drew the identical
        # stream, making these histograms equal for every seed.
        assert conditional[0] != conditional[1]

    def test_elimination_accepts_seed_sequence(self, twin_problem):
        """EngineOptions.seed may itself be a SeedSequence (as documented)."""
        solver = ChocoQSolver(
            config=ChocoQConfig(num_layers=1, num_eliminated_variables=1),
            optimizer=CobylaOptimizer(max_iterations=10),
            options=EngineOptions(shots=128, seed=np.random.SeedSequence(5)),
        )
        result = solver.solve(twin_problem)
        assert result.outcomes.shots == 128

    def test_repeated_solve_with_seed_sequence_is_reproducible(self, twin_problem):
        """solve() must not mutate a caller-owned SeedSequence between runs."""
        solver = ChocoQSolver(
            config=ChocoQConfig(num_layers=1, num_eliminated_variables=1),
            optimizer=CobylaOptimizer(max_iterations=10),
            options=EngineOptions(shots=256, seed=np.random.SeedSequence(5)),
        )
        first = solver.solve(twin_problem)
        second = solver.solve(twin_problem)
        assert first.outcomes.counts == second.outcomes.counts

    def test_elimination_reproducible_for_fixed_seed(self, twin_problem):
        first = make_solver(
            "dense", seed=5, shots=256, num_layers=1, num_eliminated_variables=1
        ).solve(twin_problem)
        second = make_solver(
            "dense", seed=5, shots=256, num_layers=1, num_eliminated_variables=1
        ).solve(twin_problem)
        assert first.outcomes.counts == second.outcomes.counts

    def test_metadata_survives_merging(self, paper_example_problem):
        result = make_solver(
            "dense", shots=600, num_layers=1, num_eliminated_variables=1
        ).solve(paper_example_problem)
        annotations = result.outcomes.metadata["eliminated_assignments"]
        assert len(annotations) == result.metadata["num_circuits"]
        assert sum(entry["shots"] for entry in annotations) == 600
        eliminated = set(result.metadata["eliminated_variables"])
        for entry in annotations:
            assert set(entry["assignment"]) == eliminated

    def test_subspace_elimination_feasible_and_annotated(self, paper_example_problem):
        result = make_solver(
            "subspace", shots=512, num_layers=2, num_eliminated_variables=1
        ).solve(paper_example_problem)
        metrics = result.metrics(paper_example_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)
        assert result.metadata["state_backend"] == "subspace"
        assert "eliminated_assignments" in result.outcomes.metadata


class TestSpeedupBenchmarkSmoke:
    def test_benchmark_agreement_on_small_case(self):
        """Tier-1 smoke: the speedup harness runs and the backends agree."""
        from bench_subspace_speedup import AGREEMENT_TOLERANCE, run_subspace_speedup

        rows = run_subspace_speedup(cases=("F1",), repeats=2)
        assert rows[0]["max_err"] <= AGREEMENT_TOLERANCE
        assert rows[0]["|F|"] < rows[0]["2^n"]
        assert rows[0]["subspace_ms/iter"] > 0

    @pytest.mark.slow
    def test_large_case_speedup_target(self):
        """The |F| << 2^n case must clear the 5x per-iteration speedup bar."""
        from bench_subspace_speedup import (
            LARGE_CASE,
            TARGET_SPEEDUP,
            check_rows,
            run_subspace_speedup,
        )

        rows = run_subspace_speedup(cases=(LARGE_CASE,))
        check_rows(rows)
        assert rows[0]["speedup"] >= TARGET_SPEEDUP
