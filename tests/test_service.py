"""Tests for the async solve service (repro.service).

Covers the four work-avoidance layers — store answers, in-flight dedup,
solve grouping and ``batched_expectations``-coalesced sweeps — plus the
bounded pool's failure isolation, per-request timeouts, graceful shutdown,
and both clients (in-process and TCP).  No pytest-asyncio in the
environment, so each test drives its own loop via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.run import (
    RunRecord,
    RunSpec,
    register_benchmark,
    unregister_benchmark,
)
from repro.service import (
    ResultStore,
    ServiceClient,
    SolveService,
    SpecCompiler,
    SweepRequest,
    TCPServiceClient,
    serve_tcp,
    solve_group_key,
)
from repro.service.coalesce import execute_group, execute_sweep
from repro.solvers.variational import batched_expectations
from test_run_api import tiny_problem

BENCH = "service-tiny-one-hot"


@pytest.fixture(autouse=True)
def _sanitized_event_loops(stall_guard):
    """Run every service test under the event-loop stall sanitizer.

    The runtime cross-check on the static ``concurrency`` lint rule: if any
    service path blocks the loop or drops a task exception, the guard fails
    the test at teardown with a stall report.
    """
    yield


@pytest.fixture
def tiny_benchmark():
    register_benchmark(BENCH, tiny_problem, replace=True)
    yield BENCH
    unregister_benchmark(BENCH)


def make_spec(seed: int = 0, **overrides) -> RunSpec:
    fields = {
        "solver": "choco-q",
        "benchmark": BENCH,
        "config": {"num_layers": 1},
        "seed": seed,
        "shots": 64,
        "max_iterations": 6,
    }
    fields.update(overrides)
    return RunSpec(**fields)


class SpyExecutor:
    """Thread-safe counting stand-in for ``execute_spec``."""

    def __init__(
        self,
        gate: "threading.Event | None" = None,
        poison_seeds: tuple = (),
    ):
        self.calls: list[RunSpec] = []
        self.gate = gate
        self.poison_seeds = set(poison_seeds)
        self._lock = threading.Lock()

    def __call__(self, spec: RunSpec) -> RunRecord:
        with self._lock:
            self.calls.append(spec)
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0), "spy gate never released"
        if spec.seed in self.poison_seeds:
            raise ServiceError(f"poisoned spec seed={spec.seed}")
        return RunRecord(
            spec=spec,
            spec_hash=spec.content_hash(),
            result={"spy": True},
            metrics={"seed": spec.seed},
        )


# ---------------------------------------------------------------------------
# Dedup, store answers, grouping (spy-backed: no real solver work)
# ---------------------------------------------------------------------------


class TestSolvePath:
    def test_identical_concurrent_requests_execute_once(self):
        spy = SpyExecutor()

        async def scenario():
            async with SolveService(execute_fn=spy, max_workers=2) as service:
                records = await asyncio.gather(
                    *(service.solve(make_spec(seed=0)) for _ in range(8))
                )
                return records, service.stats()

        records, stats = asyncio.run(scenario())
        assert len(spy.calls) == 1
        assert stats["executed"] == 1
        assert stats["deduped"] == 7
        assert len({id(record) for record in records}) >= 1
        assert all(record.spec_hash == records[0].spec_hash for record in records)

    def test_repeat_request_is_a_store_hit_with_no_execution(self):
        spy = SpyExecutor()

        async def scenario():
            async with SolveService(execute_fn=spy) as service:
                first = await service.solve(make_spec(seed=1))
                second = await service.solve(make_spec(seed=1))
                return first, second, service.stats()

        first, second, stats = asyncio.run(scenario())
        assert len(spy.calls) == 1
        assert not first.cached and second.cached
        assert stats["store_hits"] == 1
        assert second.metrics == first.metrics

    def test_store_backed_by_jsonl_survives_restart(self, tmp_path):
        spy = SpyExecutor()
        path = tmp_path / "store.jsonl"

        async def first_life():
            async with SolveService(path, execute_fn=spy) as service:
                await service.solve(make_spec(seed=2))

        async def second_life():
            async with SolveService(path, execute_fn=spy) as service:
                record = await service.solve(make_spec(seed=2))
                return record, service.stats()

        asyncio.run(first_life())
        record, stats = asyncio.run(second_life())
        assert len(spy.calls) == 1  # second life answered from the file
        assert record.cached
        assert stats["store_hits"] == 1 and stats["executed"] == 0

    def test_seed_compatible_specs_ride_one_group_dispatch(self):
        spy = SpyExecutor()

        async def scenario():
            async with SolveService(execute_fn=spy, max_workers=1) as service:
                records = await service.solve_many(
                    [make_spec(seed=seed) for seed in range(6)]
                )
                return records, service.stats()

        records, stats = asyncio.run(scenario())
        assert len(spy.calls) == 6  # every spec still executes individually
        assert stats["executed"] == 6
        # With one worker slot, the burst queues behind the first dispatch
        # and the rest of the group rides along.
        assert stats["solves_coalesced"] >= 1
        assert [record.metrics["seed"] for record in records] == list(range(6))

    def test_group_key_ignores_seed_but_nothing_else(self):
        base = make_spec(seed=0)
        assert solve_group_key(base) == solve_group_key(make_spec(seed=99))
        assert solve_group_key(base) != solve_group_key(make_spec(seed=0, shots=128))
        assert solve_group_key(base) != solve_group_key(
            make_spec(seed=0, config={"num_layers": 2})
        )

    def test_per_spec_failure_is_isolated_within_a_group(self):
        spy = SpyExecutor(poison_seeds=(1,))

        async def scenario():
            async with SolveService(execute_fn=spy, max_workers=1) as service:
                # Same group key (seeds differ only): both ride one dispatch,
                # and the poisoned seed must not take down its neighbour.
                results = await asyncio.gather(
                    service.solve(make_spec(seed=0)),
                    service.solve(make_spec(seed=1)),
                    return_exceptions=True,
                )
                return results, service.stats()

        (good_result, bad_result), stats = asyncio.run(scenario())
        assert isinstance(good_result, RunRecord)
        assert isinstance(bad_result, ServiceError)
        assert "poisoned spec seed=1" in str(bad_result)
        assert stats["executed"] == 1 and stats["failures"] == 1

    def test_dict_shaped_spec_accepted(self):
        spy = SpyExecutor()

        async def scenario():
            async with SolveService(execute_fn=spy) as service:
                return await service.solve(make_spec(seed=3).to_dict())

        record = asyncio.run(scenario())
        assert record.metrics == {"seed": 3}


# ---------------------------------------------------------------------------
# Timeouts, lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_timeout_raises_but_execution_still_lands_in_store(self):
        gate = threading.Event()
        spy = SpyExecutor(gate=gate)

        async def scenario():
            async with SolveService(execute_fn=spy) as service:
                spec = make_spec(seed=4)
                with pytest.raises(ServiceTimeoutError, match="timeout"):
                    await service.solve(spec, timeout=0.05)
                gate.set()  # release the worker; the execution was not cancelled
                deadline = asyncio.get_running_loop().time() + 5.0
                while spec.content_hash() not in service.store:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                retry = await service.solve(spec)
                return retry, service.stats()

        retry, stats = asyncio.run(scenario())
        assert stats["timeouts"] == 1
        assert retry.cached  # the retry is a pure store hit
        assert len(spy.calls) == 1

    def test_solve_before_start_or_after_stop_is_closed(self):
        spy = SpyExecutor()

        async def scenario():
            service = SolveService(execute_fn=spy)
            with pytest.raises(ServiceClosedError):
                await service.solve(make_spec())
            await service.start()
            await service.stop()
            with pytest.raises(ServiceClosedError):
                await service.solve(make_spec())

        asyncio.run(scenario())

    def test_graceful_stop_drains_inflight_work(self):
        gate = threading.Event()
        spy = SpyExecutor(gate=gate)

        async def scenario():
            service = await SolveService(execute_fn=spy).start()
            spec = make_spec(seed=5)
            task = asyncio.ensure_future(service.solve(spec))
            while not spy.calls:  # wait until the worker owns the spec
                await asyncio.sleep(0.01)
            gate.set()
            await service.stop()  # drains: the record must land first
            assert spec.content_hash() in service.store
            return await task

        record = asyncio.run(scenario())
        assert record.metrics == {"seed": 5}

    def test_constructor_validation(self):
        with pytest.raises(ServiceError, match="max_workers"):
            SolveService(max_workers=0)
        with pytest.raises(ServiceError, match="max_group_size"):
            SolveService(max_group_size=0)
        with pytest.raises(ServiceError, match="sweep_window"):
            SolveService(sweep_window=-1.0)


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_refresh_picks_up_new_lines(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        writer = ResultStore(path)
        reader = ResultStore(path)
        spec = make_spec(seed=6)
        writer.put(
            RunRecord(spec=spec, spec_hash=spec.content_hash(),
                      result={}, metrics={"seed": 6})
        )
        assert spec.content_hash() not in reader
        assert reader.refresh() == 1
        assert spec.content_hash() in reader
        assert reader.get(spec.content_hash()).cached
        writer.close()
        reader.close()

    def test_in_memory_store_roundtrip(self):
        with ResultStore() as store:
            spec = make_spec(seed=7)
            store.put(
                RunRecord(spec=spec, spec_hash=spec.content_hash(),
                          result={}, metrics={})
            )
            assert len(store) == 1
            assert store.hashes() == [spec.content_hash()]


# ---------------------------------------------------------------------------
# Sweep coalescing (real ansatz compilation + batched evolution)
# ---------------------------------------------------------------------------


class TestSweeps:
    def test_concurrent_sweeps_coalesce_into_one_batch(self, tiny_benchmark):
        async def scenario():
            async with SolveService(max_workers=2) as service:
                requests = [
                    SweepRequest(
                        solver="choco-q", benchmark=tiny_benchmark,
                        config={"num_layers": 1},
                        parameter_sets=[[0.1 * i, 0.2 * i]],
                    )
                    for i in range(5)
                ]
                scores = await asyncio.gather(
                    *(service.sweep(request) for request in requests)
                )
                return scores, service.stats()

        scores, stats = asyncio.run(scenario())
        assert stats["sweep_batches"] == 1
        assert stats["sweeps_coalesced"] == 4
        assert all(len(batch) == 1 for batch in scores)

    def test_coalesced_scores_bit_identical_to_solo_evaluation(self, tiny_benchmark):
        compiler = SpecCompiler()
        requests = [
            SweepRequest(
                solver="choco-q", benchmark=tiny_benchmark,
                config={"num_layers": 1},
                parameter_sets=[[0.3 * i + 0.1, 0.7 * i - 0.2]],
            )
            for i in range(4)
        ]
        coalesced = execute_sweep(compiler, requests)
        assert compiler.compilations == 1
        spec = compiler.spec_for(requests[0])
        for request, batch in zip(requests, coalesced):
            solo = batched_expectations(spec, request.parameter_sets)
            assert batch == [float(score) for score in solo]
        assert compiler.compilations == 1  # spec_for above hit the cache

    def test_mixed_key_batch_rejected(self, tiny_benchmark):
        compiler = SpecCompiler()
        a = SweepRequest(solver="choco-q", benchmark=tiny_benchmark,
                         config={"num_layers": 1}, parameter_sets=[[0.0, 0.0]])
        b = SweepRequest(solver="cyclic-qaoa", benchmark=tiny_benchmark,
                         parameter_sets=[[0.0, 0.0]])
        with pytest.raises(ServiceError, match="coalesce key"):
            execute_sweep(compiler, [a, b])

    def test_solver_without_build_spec_rejected(self, tiny_benchmark):
        compiler = SpecCompiler()
        request = SweepRequest(solver="hea", benchmark=tiny_benchmark,
                               parameter_sets=[[0.0]])
        with pytest.raises(ServiceError, match="build_spec"):
            compiler.spec_for(request)

    def test_sweep_request_roundtrip_promotes_single_vector(self, tiny_benchmark):
        request = SweepRequest(solver="choco-q", benchmark=tiny_benchmark,
                               config={"num_layers": 1},
                               parameter_sets=[0.1, 0.2])
        assert request.parameter_sets.shape == (1, 2)
        restored = SweepRequest.from_dict(request.to_dict())
        assert restored.coalesce_key() == request.coalesce_key()
        np.testing.assert_array_equal(
            restored.parameter_sets, request.parameter_sets
        )


# ---------------------------------------------------------------------------
# execute_group
# ---------------------------------------------------------------------------


class TestExecuteGroup:
    def test_outcomes_isolate_failures_per_spec(self):
        spy = SpyExecutor(poison_seeds=(1,))
        specs = [make_spec(seed=0), make_spec(seed=1), make_spec(seed=2)]
        outcomes = execute_group(specs, spy)
        assert [record is not None for _s, record, _e in outcomes] == [
            True, False, True,
        ]
        assert [error is None for _s, _r, error in outcomes] == [True, False, True]
        assert "poisoned" in str(outcomes[1][2])


# ---------------------------------------------------------------------------
# Clients: in-process smoke (rides tier-1/test-fast) and TCP round trip
# ---------------------------------------------------------------------------


class TestClients:
    def test_service_client_smoke_real_solver(self, tiny_benchmark):
        """End-to-end smoke: dedup + store hit through the real solver path."""

        async def scenario():
            async with SolveService(max_workers=2) as service:
                client = ServiceClient(service)
                spec = make_spec(seed=0, benchmark=tiny_benchmark)
                burst = await asyncio.gather(*(client.solve(spec) for _ in range(4)))
                repeat = await client.solve(spec)
                return burst, repeat, await client.stats()

        burst, repeat, stats = asyncio.run(scenario())
        assert stats["executed"] == 1
        assert stats["deduped"] == 3
        assert stats["store_hits"] == 1
        assert repeat.cached
        assert repeat.metrics["success_rate"] == burst[0].metrics["success_rate"]

    def test_tcp_round_trip_solve_sweep_stats(self, tiny_benchmark):
        spy = SpyExecutor()

        async def scenario():
            service = await SolveService(execute_fn=spy, max_workers=2).start()
            server = await serve_tcp(service)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                async with await TCPServiceClient.connect(host, port) as client:
                    assert await client.ping()
                    spec = make_spec(seed=8)
                    burst = await client.solve_many([spec] * 4)
                    repeat = await client.solve(spec)
                    sweep_scores = await client.sweep(
                        SweepRequest(
                            solver="choco-q", benchmark=tiny_benchmark,
                            config={"num_layers": 1},
                            parameter_sets=[[0.1, 0.2], [0.3, 0.4]],
                        )
                    )
                    stats = await client.stats()
                    return burst, repeat, sweep_scores, stats
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        burst, repeat, sweep_scores, stats = asyncio.run(scenario())
        assert len(spy.calls) == 1  # the pipelined burst deduped server-side
        assert all(record.spec_hash == burst[0].spec_hash for record in burst)
        assert repeat.cached
        assert len(sweep_scores) == 2
        assert stats["requests"] == 5

    def test_tcp_unknown_op_and_bad_spec_report_errors(self):
        async def scenario():
            service = await SolveService(execute_fn=SpyExecutor()).start()
            server = await serve_tcp(service)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                async with await TCPServiceClient.connect(host, port) as client:
                    with pytest.raises(ServiceError, match="unknown op"):
                        await client._request({"op": "frobnicate"})
                    with pytest.raises(ServiceError, match="unknown RunSpec"):
                        await client._request(
                            {"op": "solve", "spec": {"bogus_field": 1}}
                        )
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        asyncio.run(scenario())
