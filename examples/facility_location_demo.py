"""Facility location: compare all four QAOA designs on one FLP instance.

The scenario from the paper's introduction: decide which facilities to open
and which facility serves each demand point, minimizing opening plus service
cost, with assignment and linking constraints.  The script builds an F1-scale
instance, runs Penalty-QAOA, Cyclic-QAOA, HEA and Choco-Q on it, and prints a
Table-II-style comparison plus the decoded best plan.

Run with ``python examples/facility_location_demo.py``.
"""

from __future__ import annotations

import os

import repro
from repro import EngineOptions
from repro.analysis import print_table
from repro.core.metrics import best_measured
from repro.problems.facility_location import (
    facility_location_problem,
    random_facility_location,
    variable_layout,
)
from repro.solvers import CobylaOptimizer

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"

#: registry name -> layer-count override for this demo's comparison.
LAYERS = {"penalty-qaoa": 3, "cyclic-qaoa": 3, "hea": 2, "choco-q": 2}


def main() -> None:
    instance = random_facility_location(num_facilities=2, num_demands=1, seed=42)
    problem = facility_location_problem(instance, name="demo-flp")
    print(f"instance: {instance.num_facilities} facilities, {instance.num_demands} demand points")
    print(f"opening costs: {instance.opening_costs}")
    print(f"service costs: {instance.service_costs}")
    print(f"problem size : {problem.num_variables} variables, {problem.num_constraints} constraints\n")

    options = EngineOptions(shots=256 if SMOKE else 4096, seed=1)
    optimizer = CobylaOptimizer(max_iterations=10 if SMOKE else 80)

    _, optimal_value = problem.brute_force_optimum()
    rows = []
    best_plan = None
    for name, layers in LAYERS.items():
        result = repro.solve(
            problem, solver=name, num_layers=layers, optimizer=optimizer, options=options
        )
        metrics = result.metrics(problem, optimal_value)
        rows.append(
            {
                "solver": name,
                "success_%": 100 * metrics.success_rate,
                "in_constraints_%": 100 * metrics.in_constraints_rate,
                "arg": metrics.approximation_ratio_gap,
                "depth": metrics.circuit_depth,
                "iterations": result.metadata.get("iterations", 0),
            }
        )
        if name == "choco-q":
            best_plan, _ = best_measured(problem, dict(result.distribution()))

    print_table(rows, title=f"FLP comparison (classical optimum = {optimal_value})")

    if best_plan is not None:
        layout = variable_layout(instance.num_facilities, instance.num_demands)
        print("\nChoco-Q best measured plan:")
        for facility in range(instance.num_facilities):
            state = "open" if best_plan[layout[f"y{facility}"]] else "closed"
            print(f"  facility {facility}: {state}")
        for demand in range(instance.num_demands):
            for facility in range(instance.num_facilities):
                if best_plan[layout[f"x{demand}_{facility}"]]:
                    print(f"  demand {demand} served by facility {facility}")


if __name__ == "__main__":
    main()
