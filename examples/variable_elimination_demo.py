"""Variable elimination: trading measurement overhead for circuit depth.

Reproduces the reasoning of Section IV-C interactively: for an F2-scale
facility location instance, eliminate 0, 1 and 2 variables and report how the
transpiled circuit depth, the qubit count, the number of circuit executions,
and the noisy success rate respond.  Shallower circuits survive NISQ noise
better, which is why the paper reports large success gains from the first
one or two eliminations and diminishing returns afterwards.

Run with ``python examples/variable_elimination_demo.py``.
"""

from __future__ import annotations

import os

import repro
from repro import EngineOptions
from repro.analysis import print_table
from repro.core import choose_elimination_variables, ternary_nullspace_basis
from repro.problems import make_benchmark
from repro.qcircuit.noise import IBM_FEZ, NoiseModel
from repro.solvers import CobylaOptimizer

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"


def main() -> None:
    problem = make_benchmark("F2")
    matrix, _ = problem.constraint_matrix()
    basis = ternary_nullspace_basis(matrix)
    print(f"problem: {problem.name} — {problem.num_variables} variables, "
          f"{problem.num_constraints} constraints")
    print(f"driver basis: {len(basis)} solution vectors of C u = 0")
    print("elimination order (most non-zeros first):",
          choose_elimination_variables(problem, 2), "\n")

    _, optimal_value = problem.brute_force_optimum()
    optimizer = CobylaOptimizer(max_iterations=5 if SMOKE else 30)
    rows = []
    for eliminated in (0, 1) if SMOKE else (0, 1, 2):
        config = {"num_layers": 1, "num_eliminated_variables": eliminated}

        ideal = repro.solve(
            problem, solver="choco-q", config=config, optimizer=optimizer,
            options=EngineOptions(shots=128 if SMOKE else 1024, seed=3),
        )

        noisy = repro.solve(
            problem, solver="choco-q", config=config, optimizer=optimizer,
            options=EngineOptions(
                shots=64 if SMOKE else 512, seed=3,
                noise_model=NoiseModel(IBM_FEZ, seed=3),
                noisy_trajectories=2 if SMOKE else 8,
            ),
        )
        noisy_metrics = noisy.metrics(problem, optimal_value)

        rows.append(
            {
                "eliminated": eliminated,
                "qubits": ideal.metadata.get("sub_problem_qubits", ideal.num_qubits),
                "circuit_executions": ideal.metadata.get("num_circuits", 1),
                "transpiled_depth": ideal.transpiled_depth,
                "noisy_success_%": 100 * noisy_metrics.success_rate,
                "noisy_in_constraints_%": 100 * noisy_metrics.in_constraints_rate,
            }
        )

    print_table(rows, title="Variable elimination on F2 (ideal depth, Fez-noise success)")


if __name__ == "__main__":
    main()
