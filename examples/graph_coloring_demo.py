"""Graph coloring on a noisy device model.

Builds a G1-scale graph coloring instance, solves it with Choco-Q twice —
once on the ideal simulator and once under the IBM Fez noise model — and
decodes the best measured coloring.  This mirrors the paper's Fig. 10
hardware experiment: noise erodes the ideal rates but the commute-Hamiltonian
encoding keeps most samples feasible.

Run with ``python examples/graph_coloring_demo.py``.
"""

from __future__ import annotations

import os

import repro
from repro import ChocoQConfig, EngineOptions
from repro.analysis import print_table
from repro.core.metrics import best_measured
from repro.problems.graph_coloring import (
    coloring_from_assignment,
    graph_coloring_problem,
    is_proper_coloring,
    random_graph_coloring,
)
from repro.qcircuit.noise import IBM_FEZ, NoiseModel
from repro.solvers import CobylaOptimizer

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"


def main() -> None:
    instance = random_graph_coloring(num_vertices=3, num_edges=2, num_colors=2, seed=7)
    problem = graph_coloring_problem(instance, name="demo-gcp")
    print(f"graph: {instance.num_vertices} vertices, edges = {list(instance.edges)}")
    print(f"colors: {instance.num_colors}, per-color costs = {instance.color_costs}")
    print(f"problem size: {problem.num_variables} variables, {problem.num_constraints} constraints\n")

    _, optimal_value = problem.brute_force_optimum()
    optimizer = CobylaOptimizer(max_iterations=8 if SMOKE else 60)
    config = ChocoQConfig(num_layers=2)

    rows = []
    decoded = {}
    for label, noise_model in (("ideal", None), ("fez-noise", NoiseModel(IBM_FEZ, seed=3))):
        options = EngineOptions(
            shots=128 if SMOKE else 2048,
            seed=2,
            noise_model=noise_model,
            noisy_trajectories=2 if SMOKE else 8,
        )
        result = repro.solve(problem, solver="choco-q", config=config,
                             optimizer=optimizer, options=options)
        metrics = result.metrics(problem, optimal_value)
        rows.append(
            {
                "backend": label,
                "success_%": 100 * metrics.success_rate,
                "in_constraints_%": 100 * metrics.in_constraints_rate,
                "arg": metrics.approximation_ratio_gap,
            }
        )
        best, _ = best_measured(problem, dict(result.distribution()))
        decoded[label] = best

    print_table(rows, title="Choco-Q on graph coloring: ideal vs. Fez noise model")

    for label, assignment in decoded.items():
        if assignment is None:
            print(f"\n{label}: no feasible sample observed")
            continue
        coloring = coloring_from_assignment(instance, assignment)
        print(f"\n{label}: best measured coloring = {coloring} "
              f"(proper: {is_proper_coloring(instance, coloring)})")


if __name__ == "__main__":
    main()
