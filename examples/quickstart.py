"""Quickstart: solve a small constrained binary optimization with repro.solve.

This walks through the unified experiment API in ~40 lines:

1. define a problem (objective + linear equality constraints),
2. run any registered solver with one ``repro.solve(...)`` call,
3. inspect the measurement histogram and the Table-II metrics,
4. compare against the classical exact solution.

``repro.available_solvers()`` lists the registered designs (``choco-q``,
``penalty-qaoa``, ``cyclic-qaoa``, ``hea``); keyword overrides such as
``num_layers=2`` configure the solver without touching its config class.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import os

import repro
from repro import ConstrainedBinaryProblem, EngineOptions, LinearConstraint, Objective
from repro.solvers import BranchAndBoundSolver

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"


def main() -> None:
    # The running example of the paper (Fig. 2a / Fig. 3):
    #   maximize 3 x0 + 2 x1 + 3 x2 + x3
    #   subject to x0 - x2 = 0 and x0 + x1 + x3 = 1.
    objective = Objective({(0,): 3.0, (1,): 2.0, (2,): 3.0, (3,): 1.0})
    constraints = [
        LinearConstraint((1.0, 0.0, -1.0, 0.0), 0.0),
        LinearConstraint((1.0, 1.0, 0.0, 1.0), 1.0),
    ]
    problem = ConstrainedBinaryProblem(
        num_variables=4,
        objective=objective,
        constraints=constraints,
        sense="max",
        name="quickstart",
    )

    # Classical ground truth (exponential, fine at this size).
    classical = BranchAndBoundSolver().solve(problem)
    print(f"classical optimum: x = {classical.assignment}, value = {classical.value}")
    print(f"registered solvers: {repro.available_solvers()}")

    # Choco-Q: the commute-Hamiltonian driver guarantees every sample is feasible.
    result = repro.solve(
        problem,
        solver="choco-q",
        num_layers=2,
        options=EngineOptions(shots=256 if SMOKE else 4096, seed=0),
    )

    print(f"\nmost frequent measurements ({result.outcomes.shots} shots):")
    for bitstring, count in result.outcomes.most_common(5):
        bits = tuple(int(ch) for ch in bitstring)
        print(
            f"  {bitstring}  count={count:5d}  objective={problem.evaluate(bits):5.1f}"
            f"  feasible={problem.is_feasible(bits)}"
        )

    metrics = result.metrics(problem)
    print("\nmetrics (Table II format):")
    print(f"  success rate        = {100 * metrics.success_rate:.2f}%")
    print(f"  in-constraints rate = {100 * metrics.in_constraints_rate:.2f}%")
    print(f"  approximation gap   = {metrics.approximation_ratio_gap:.3f}")
    print(f"  circuit depth       = {metrics.circuit_depth}")
    print(f"  optimizer iterations= {result.metadata['iterations']}")

    # Every run serializes: result.to_dict() round-trips through JSON, which
    # is how the repro.run batch runner persists whole experiment grids.
    restored = repro.SolverResult.from_dict(result.to_dict())
    print(f"\nserialization round-trip ok: {restored.to_dict() == result.to_dict()}")


if __name__ == "__main__":
    main()
