"""Quickstart: solve a small constrained binary optimization with Choco-Q.

This walks through the full public API in ~40 lines:

1. define a problem (objective + linear equality constraints),
2. solve it with the Choco-Q solver,
3. inspect the measurement histogram and the Table-II metrics,
4. compare against the classical exact solution.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import ChocoQConfig, ChocoQSolver, ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.solvers import BranchAndBoundSolver, EngineOptions


def main() -> None:
    # The running example of the paper (Fig. 2a / Fig. 3):
    #   maximize 3 x0 + 2 x1 + 3 x2 + x3
    #   subject to x0 - x2 = 0 and x0 + x1 + x3 = 1.
    objective = Objective({(0,): 3.0, (1,): 2.0, (2,): 3.0, (3,): 1.0})
    constraints = [
        LinearConstraint((1.0, 0.0, -1.0, 0.0), 0.0),
        LinearConstraint((1.0, 1.0, 0.0, 1.0), 1.0),
    ]
    problem = ConstrainedBinaryProblem(
        num_variables=4,
        objective=objective,
        constraints=constraints,
        sense="max",
        name="quickstart",
    )

    # Classical ground truth (exponential, fine at this size).
    classical = BranchAndBoundSolver().solve(problem)
    print(f"classical optimum: x = {classical.assignment}, value = {classical.value}")

    # Choco-Q: the commute-Hamiltonian driver guarantees every sample is feasible.
    solver = ChocoQSolver(
        config=ChocoQConfig(num_layers=2),
        options=EngineOptions(shots=4096, seed=0),
    )
    result = solver.solve(problem)

    print(f"\nmost frequent measurements ({result.outcomes.shots} shots):")
    for bitstring, count in result.outcomes.most_common(5):
        bits = tuple(int(ch) for ch in bitstring)
        print(
            f"  {bitstring}  count={count:5d}  objective={problem.evaluate(bits):5.1f}"
            f"  feasible={problem.is_feasible(bits)}"
        )

    metrics = result.metrics(problem)
    print("\nmetrics (Table II format):")
    print(f"  success rate        = {100 * metrics.success_rate:.2f}%")
    print(f"  in-constraints rate = {100 * metrics.in_constraints_rate:.2f}%")
    print(f"  approximation gap   = {metrics.approximation_ratio_gap:.3f}")
    print(f"  circuit depth       = {metrics.circuit_depth}")
    print(f"  optimizer iterations= {result.metadata['iterations']}")


if __name__ == "__main__":
    main()
