"""K-partition: the one domain where the cyclic baseline is competitive.

All KPP constraints are in summation format (one block per vertex, balanced
block sizes), which is exactly what the cyclic XY-driver can encode — the
paper notes the cyclic baseline performs best on KPP for this reason, while
Choco-Q still leads.  This script builds a K1-scale instance, runs both
hard-constraint designs, and decodes the best partitions.

Run with ``python examples/k_partition_demo.py``.
"""

from __future__ import annotations

import os

import repro
from repro import EngineOptions
from repro.analysis import print_table
from repro.core.metrics import best_measured
from repro.problems.k_partition import (
    cut_weight,
    k_partition_problem,
    partition_from_assignment,
    random_k_partition,
)
from repro.solvers import CobylaOptimizer

SMOKE = os.environ.get("REPRO_SMOKE", "") == "1"


def main() -> None:
    instance = random_k_partition(num_vertices=4, num_edges=4, num_blocks=2, seed=11)
    problem = k_partition_problem(instance, name="demo-kpp")
    print(f"graph: {instance.num_vertices} vertices, weighted edges:")
    for (u, v), w in zip(instance.edges, instance.weights):
        print(f"  ({u}, {v}) weight {w}")
    print(f"blocks: {instance.num_blocks} of size {instance.block_size}")
    print("every constraint is in summation format:",
          all(c.is_summation_format() for c in problem.constraints), "\n")

    _, optimal_value = problem.brute_force_optimum()
    optimizer = CobylaOptimizer(max_iterations=10 if SMOKE else 80)
    options = EngineOptions(shots=256 if SMOKE else 4096, seed=5)

    # Both hard-constraint designs, by registry name.
    layers = {"cyclic-qaoa": 4, "choco-q": 2}

    rows = []
    for name, num_layers in layers.items():
        result = repro.solve(
            problem, solver=name, num_layers=num_layers, optimizer=optimizer, options=options
        )
        metrics = result.metrics(problem, optimal_value)
        rows.append(
            {
                "solver": name,
                "success_%": 100 * metrics.success_rate,
                "in_constraints_%": 100 * metrics.in_constraints_rate,
                "arg": metrics.approximation_ratio_gap,
                "depth": metrics.circuit_depth,
            }
        )
        best, value = best_measured(problem, dict(result.distribution()))
        if best is not None:
            partition = partition_from_assignment(instance, best)
            print(
                f"{name}: best partition {partition} — within-block weight {value}, "
                f"cut weight {cut_weight(instance, partition)}"
            )

    print()
    print_table(rows, title=f"KPP comparison (classical optimum = {optimal_value})")


if __name__ == "__main__":
    main()
