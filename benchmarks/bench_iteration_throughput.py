"""Per-iteration cost-evaluation throughput: compiled vs recompute-every-call.

The optimizer inner loop is the paper's latency story, and before this
benchmark's PR the loop re-derived its own structure on every cost
evaluation: the dense path rebuilt ``np.arange(2^n)`` plus two boolean masks
per term, and the subspace path recomputed the entire pairing permutation —
a Python loop of per-row dict lookups — per term, per layer, per COBYLA
iteration.  A compiled :class:`~repro.hamiltonian.compiled.EvolutionProgram`
resolves all of that once per solver prepare.

This benchmark times one full cost evaluation (ansatz evolution +
probability reduction + diagonal expectation) per backend and path:

* ``*_recompute`` — the pre-PR structure-per-call paths, kept callable via
  ``CommuteHamiltonianTerm.apply_evolution`` (dense) and
  :func:`~repro.hamiltonian.commute.subspace_pairing_loop` (subspace);
* ``*_compiled``  — the same arithmetic over the program's cached pair
  indices (bit-identical final states, asserted on every row).

The acceptance gate requires the compiled subspace path to clear
``TARGET_SPEEDUP`` (5x) over the recompute path on the 16-qubit gate case.
Results are written to ``BENCH_iteration_throughput.json`` through the
shared writer in :mod:`harness`, seeding the repo's machine-readable perf
trajectory (``make bench-hotpath`` refreshes it).

Run directly (``python benchmarks/bench_iteration_throughput.py``) or through
pytest-benchmark
(``pytest benchmarks/bench_iteration_throughput.py -o python_functions="bench_*"``).
"""

from __future__ import annotations

import numpy as np

from harness import print_speedup_rows, time_call, write_bench_json

from repro.hamiltonian.commute import rotate_pairs_cs, subspace_pairing_loop
from repro.hamiltonian.compiled import apply_diagonal_phase, prepare_ansatz_state
from repro.problems import make_benchmark
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import EngineOptions

BENCH_NAME = "iteration_throughput"
CASES = ("F1", "K1", "K2", "G4", "K4")
#: 16-qubit case the acceptance gate applies to.  G4 is also 16 qubits but
#: its feasible set holds just 2 states, so its recompute path has almost no
#: pairing work to hoist; K4 (|F| = 70, 7 driver terms) is the case that
#: actually exercises the per-call pairing loop the compiled path removes.
GATE_CASES = ("K4",)
GATE_QUBITS = 16
NUM_LAYERS = 2
#: Best-of repeats per timing.  Individual cost evaluations are sub-ms, so a
#: generous repeat count costs little and keeps the gate ratio stable against
#: scheduler jitter.
REPEATS = 15
TARGET_SPEEDUP = 5.0
#: Compiling the dense path removes only the per-call arange/mask rebuild —
#: a ~1.1x win at 16 qubits, within wall-clock noise of a loaded machine —
#: so the dense check is a no-regression floor with jitter headroom, not a
#: speedup gate.
DENSE_NO_REGRESSION = 0.9


def _build_specs(problem, num_layers: int):
    """Compiled dense and subspace AnsatzSpecs plus the shared driver."""
    optimizer = CobylaOptimizer(max_iterations=1)
    options = EngineOptions(shots=1, seed=0)
    dense_spec, driver = ChocoQSolver(
        ChocoQConfig(num_layers=num_layers, backend="dense"), optimizer, options
    ).build_spec(problem)
    subspace_spec, _ = ChocoQSolver(
        ChocoQConfig(num_layers=num_layers, backend="subspace"), optimizer, options
    ).build_spec(problem)
    return dense_spec, subspace_spec, driver


def legacy_dense_evolve(driver, spec, num_layers: int):
    """The pre-PR dense inner loop: term structure re-derived per call."""

    def evolve(parameters: np.ndarray) -> np.ndarray:
        parameters, state = prepare_ansatz_state(spec.initial_state, parameters)
        for layer in range(num_layers):
            gamma = parameters[..., 2 * layer]
            beta = parameters[..., 2 * layer + 1]
            state = apply_diagonal_phase(state, gamma, spec.cost_diagonal)
            for term in driver.terms:
                # apply_evolution rebuilds np.arange(2^n) + both masks here.
                state = term.apply_evolution(state, beta)
        return state

    return evolve


def legacy_subspace_evolve(driver, spec, num_layers: int):
    """The pre-PR subspace inner loop: full pairing recomputed per call."""
    subspace_map = spec.backend.subspace_map

    def evolve(parameters: np.ndarray) -> np.ndarray:
        parameters, state = prepare_ansatz_state(spec.initial_state, parameters)
        for layer in range(num_layers):
            gamma = parameters[..., 2 * layer]
            beta = parameters[..., 2 * layer + 1]
            state = apply_diagonal_phase(state, gamma, spec.cost_diagonal)
            cos_b = np.cos(beta)
            sin_b = np.sin(beta)
            for term in driver.terms:
                # The O(|F|) Python partner loop the compiled path hoisted.
                a_coordinates, b_coordinates = subspace_pairing_loop(term, subspace_map)
                state = rotate_pairs_cs(state, cos_b, sin_b, a_coordinates, b_coordinates)
        return state

    return evolve


def _cost_function(evolve, cost_diagonal: np.ndarray):
    """One optimizer iteration's cost evaluation, as the engine performs it."""

    def cost(parameters: np.ndarray) -> float:
        state = evolve(parameters)
        probabilities = np.abs(state) ** 2
        return float(np.dot(probabilities, cost_diagonal))

    return cost


def run_iteration_throughput(
    cases=CASES, num_layers: int = NUM_LAYERS, repeats: int = REPEATS
) -> list[dict]:
    """One row per case: per-iteration cost-eval times for all four paths."""
    rows = []
    for case in cases:
        problem = make_benchmark(case)
        dense_spec, subspace_spec, driver = _build_specs(problem, num_layers)
        dense_legacy = legacy_dense_evolve(driver, dense_spec, num_layers)
        subspace_legacy = legacy_subspace_evolve(driver, subspace_spec, num_layers)
        parameters = np.asarray(dense_spec.initial_parameters, dtype=float)

        # The compiled paths must be drop-in: bit-identical final states.
        bit_identical = bool(
            np.array_equal(dense_spec.evolve(parameters), dense_legacy(parameters))
            and np.array_equal(
                subspace_spec.evolve(parameters), subspace_legacy(parameters)
            )
        )

        timings = {
            label: time_call(lambda cost=cost: cost(parameters), repeats) * 1e3
            for label, cost in {
                "dense_recompute": _cost_function(dense_legacy, dense_spec.cost_diagonal),
                "dense_compiled": _cost_function(dense_spec.evolve, dense_spec.cost_diagonal),
                "subspace_recompute": _cost_function(
                    subspace_legacy, subspace_spec.cost_diagonal
                ),
                "subspace_compiled": _cost_function(
                    subspace_spec.evolve, subspace_spec.cost_diagonal
                ),
            }.items()
        }
        rows.append(
            {
                "case": case,
                "qubits": problem.num_variables,
                "2^n": 2**problem.num_variables,
                "|F|": subspace_spec.metadata["subspace_size"],
                "terms": len(driver.terms),
                "bit_identical": bit_identical,
                "dense_recompute_ms/iter": timings["dense_recompute"],
                "dense_compiled_ms/iter": timings["dense_compiled"],
                "dense_speedup": timings["dense_recompute"] / timings["dense_compiled"],
                "subspace_recompute_ms/iter": timings["subspace_recompute"],
                "subspace_compiled_ms/iter": timings["subspace_compiled"],
                "subspace_speedup": timings["subspace_recompute"]
                / timings["subspace_compiled"],
            }
        )
    return rows


def check_rows(rows: list[dict]) -> None:
    """The benchmark's acceptance gate."""
    for row in rows:
        assert row["bit_identical"], (
            f"{row['case']}: compiled states are not bit-identical to the "
            "recompute-every-call path"
        )
    gated = [row for row in rows if row["case"] in GATE_CASES]
    assert gated, f"no gate case among {[row['case'] for row in rows]}"
    for row in gated:
        assert row["qubits"] == GATE_QUBITS, (
            f"{row['case']}: gate case must be {GATE_QUBITS} qubits"
        )
        assert row["subspace_speedup"] >= TARGET_SPEEDUP, (
            f"{row['case']}: compiled subspace path only "
            f"{row['subspace_speedup']:.1f}x over the recompute path, "
            f"wanted >= {TARGET_SPEEDUP}x"
        )
        assert row["dense_speedup"] >= DENSE_NO_REGRESSION, (
            f"{row['case']}: compiling the dense path made it slower "
            f"({row['dense_speedup']:.2f}x)"
        )


def write_trajectory(rows: list[dict]) -> str:
    """Record the run in BENCH_iteration_throughput.json (the perf gate file)."""
    return write_bench_json(
        BENCH_NAME,
        rows,
        metadata={
            "num_layers": NUM_LAYERS,
            "repeats": REPEATS,
            "target_speedup": TARGET_SPEEDUP,
            "dense_no_regression": DENSE_NO_REGRESSION,
            "gate_cases": list(GATE_CASES),
            "gate_qubits": GATE_QUBITS,
        },
    )


def print_rows(rows: list[dict]) -> None:
    printable = [
        {key: value for key, value in row.items() if key != "bit_identical"}
        for row in rows
    ]
    print_speedup_rows(
        printable, title="Compiled evolution programs — per-iteration cost-eval throughput"
    )


def bench_iteration_throughput(benchmark):
    rows = benchmark.pedantic(run_iteration_throughput, rounds=1, iterations=1)
    print()
    print_rows(rows)
    check_rows(rows)


if __name__ == "__main__":
    table_rows = run_iteration_throughput()
    print_rows(table_rows)
    check_rows(table_rows)
    path = write_trajectory(table_rows)
    print(f"trajectory written to {path}")
    print("all bit-identity and throughput-gate checks passed")
