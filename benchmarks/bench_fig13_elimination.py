"""Figure 13 — the effect of variable elimination.

Panel (a): transpiled circuit depth after eliminating 0-3 variables on the
mid-scale cases (F2, G2, K2) — each elimination shrinks the constraint
matrix, the solution vectors, and therefore the decomposed driver.
Panel (b): success rate under a device noise model — shallower circuits
survive noise better, so elimination buys success rate despite splitting the
shot budget over more circuit executions; the gains taper off once most
non-zeros have been eliminated (the paper's diminishing-returns observation).
"""

from __future__ import annotations

from harness import engine_options, optimizer, percentage

from repro.analysis.report import print_table
from repro.problems import make_benchmark
from repro.qcircuit.noise import IBM_FEZ, NoiseModel
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver

CASES = ("F2", "G2", "K2")
ELIMINATION_COUNTS = (0, 1, 2)
NOISY_SHOTS = 512
NOISY_ITERATIONS = 20


def _fig13_rows() -> list[dict]:
    depth_rows = []
    success_rows = []
    for case in CASES:
        problem = make_benchmark(case)
        _, optimal_value = problem.brute_force_optimum()
        depth_row: dict = {"case": case}
        success_row: dict = {"case": case}
        for eliminated in ELIMINATION_COUNTS:
            config = ChocoQConfig(num_layers=1, num_eliminated_variables=eliminated)
            ideal_solver = ChocoQSolver(
                config=config, optimizer=optimizer(NOISY_ITERATIONS), options=engine_options()
            )
            ideal_result = ideal_solver.solve(problem)
            depth_row[f"depth[elim={eliminated}]"] = ideal_result.transpiled_depth

            noisy_solver = ChocoQSolver(
                config=config,
                optimizer=optimizer(NOISY_ITERATIONS),
                options=engine_options(NoiseModel(IBM_FEZ, seed=5), shots=NOISY_SHOTS),
            )
            noisy_result = noisy_solver.solve(problem)
            metrics = noisy_result.metrics(problem, optimal_value)
            success_row[f"success_%[elim={eliminated}]"] = percentage(metrics.success_rate)
        depth_rows.append(depth_row)
        success_rows.append(success_row)
    return depth_rows + success_rows


def bench_fig13_elimination(benchmark):
    rows = benchmark.pedantic(_fig13_rows, rounds=1, iterations=1)
    depth_rows = rows[: len(CASES)]
    success_rows = rows[len(CASES):]
    print()
    print_table(depth_rows, title="Figure 13(a) — transpiled depth vs. eliminated variables")
    print()
    print_table(success_rows, title="Figure 13(b) — noisy success rate vs. eliminated variables")
    # Depth decreases (or at worst stays flat) as variables are eliminated.
    # The paper notes KPP benefits little (uniformly distributed non-zeros),
    # so a small slack is allowed; the FLP/GCP cases must show a real drop.
    for row in depth_rows:
        assert row["depth[elim=1]"] <= row["depth[elim=0]"] * 1.1
        assert row["depth[elim=2]"] <= row["depth[elim=1]"] * 1.1
    by_case = {row["case"]: row for row in depth_rows}
    assert by_case["F2"]["depth[elim=2]"] < by_case["F2"]["depth[elim=0]"]
