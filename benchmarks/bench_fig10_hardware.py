"""Figure 10 — success and in-constraints rates under device noise models.

The paper runs the small-scale cases (F1, G1, K1) on three IBM devices (Fez,
Osaka, Sherbrooke).  We substitute the hardware with the depolarizing +
readout noise models calibrated from the gate fidelities quoted in Section
V-A (see DESIGN.md) and regenerate the same grid: per device and per case,
the success rate and in-constraints rate of every design.

The whole grid is one declarative :class:`~repro.run.ExperimentPlan` — each
(device, case, design) cell is a :class:`~repro.run.RunSpec` whose ``noise``
field names the device profile — executed by :func:`~repro.run.run_plan`
with the shared ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_CACHE`` knobs.  The
noise scenario participates in the spec content hash, so a cached noisy grid
re-runs for free and never collides with its noiseless twin.

Expected shape (paper): noise lowers every number, Fez (native CZ, 99.7%)
beats the ECR devices, and Choco-Q keeps the highest in-constraints rate
(2.43x average improvement) and success rate (2.65x) across devices.
"""

from __future__ import annotations

import numpy as np

from harness import CACHE_PATH, SEED, WORKERS, percentage, write_bench_json

from repro.analysis.report import print_table
from repro.qcircuit import DEFAULT_OPTIMIZATION_LEVEL
from repro.run import ExperimentPlan, RunSpec, run_plan

CASES = ("F1", "G1", "K1")
DEVICES = ("fez", "osaka", "sherbrooke")
#: Transpiler optimization levels the grid sweeps: raw lowering (0) against
#: the default pass pipeline, so the circuit-optimization stack shows up as a
#: measurable success-rate axis (fewer gates -> higher fidelity factor).
OPTIMIZATION_LEVELS = (0, DEFAULT_OPTIMIZATION_LEVEL)
NOISY_SHOTS = 512
NOISY_ITERATIONS = 25
NOISY_TRAJECTORIES = 8

#: Table label -> (registry name, config overrides).  Choco-Q follows the
#: Table-II footnote: one eliminated variable on hardware, trading
#: measurement overhead for a shallower (more noise-tolerant) circuit.
FIG10_DESIGNS = {
    "penalty": ("penalty-qaoa", {"num_layers": 2}),
    "hea": ("hea", {"num_layers": 1}),
    "choco-q": ("choco-q", {"num_layers": 1, "num_eliminated_variables": 1}),
}


def fig10_plan() -> ExperimentPlan:
    """The (device x case x design x optimization level) grid as one plan."""
    specs = [
        RunSpec(
            solver=solver,
            benchmark=case,
            config=dict(config),
            noise={"device": device, "trajectories": NOISY_TRAJECTORIES},
            seed=SEED,
            shots=NOISY_SHOTS,
            max_iterations=NOISY_ITERATIONS,
            optimization_level=level,
            label=f"{label}@{case}#{device}!o{level}",
        )
        for device in DEVICES
        for case in CASES
        for level in OPTIMIZATION_LEVELS
        for label, (solver, config) in FIG10_DESIGNS.items()
    ]
    return ExperimentPlan(specs=specs, name="fig10", base_seed=SEED)


def _fig10_rows() -> list[dict]:
    plan = fig10_plan()
    records = run_plan(plan, max_workers=WORKERS, jsonl_path=CACHE_PATH)
    design_of = {solver: label for label, (solver, _) in FIG10_DESIGNS.items()}
    rows: dict[tuple[str, str, int], dict] = {}
    for spec, record in zip(plan.specs, records):
        label, device = design_of[spec.solver], spec.noise["device"]
        row = rows.setdefault(
            (device, spec.benchmark, spec.optimization_level),
            {
                "device": device,
                "case": spec.benchmark,
                "opt_level": spec.optimization_level,
            },
        )
        row[f"success_%[{label}]"] = percentage(record.metrics["success_rate"])
        row[f"in_cons_%[{label}]"] = percentage(record.metrics["in_constraints_rate"])
    return list(rows.values())


def _check_rows(rows: list[dict]) -> dict[str, float]:
    """The acceptance checks shared by the pytest and script entries.

    Raised explicitly (not ``assert``) so the ``__main__`` path that writes
    ``BENCH_fig10_hardware.json`` cannot record a regressed grid under
    ``python -O``.
    """
    averages = {
        label: float(np.mean([float(row[f"in_cons_%[{label}]"]) for row in rows]))
        for label in FIG10_DESIGNS
    }
    # Choco-Q keeps a clear in-constraints lead over the penalty design and
    # stays competitive with the (much shallower) HEA circuits under noise.
    if not averages["choco-q"] > averages["penalty"]:
        raise AssertionError(f"choco-q lost its in-constraints lead: {averages}")
    if not averages["choco-q"] > 0.7 * averages["hea"]:
        raise AssertionError(f"choco-q fell behind 0.7x HEA: {averages}")
    return averages


def bench_fig10_hardware(benchmark):
    rows = benchmark.pedantic(_fig10_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Figure 10 — noisy-device success / in-constraints rates")
    averages = _check_rows(rows)
    print(
        "\naverage in-constraints rate: "
        + " ".join(f"{label}={value:.1f}%" for label, value in averages.items())
    )


if __name__ == "__main__":
    fig10_rows = _fig10_rows()
    print_table(
        fig10_rows, title="Figure 10 — noisy-device success / in-constraints rates"
    )
    fig10_averages = _check_rows(fig10_rows)
    print(
        "average in-constraints rate: "
        + " ".join(f"{label}={value:.1f}%" for label, value in fig10_averages.items())
    )
    write_bench_json(
        "fig10_hardware",
        fig10_rows,
        metadata={
            "cases": list(CASES),
            "devices": list(DEVICES),
            "optimization_levels": list(OPTIMIZATION_LEVELS),
            "shots": NOISY_SHOTS,
            "iterations": NOISY_ITERATIONS,
            "trajectories": NOISY_TRAJECTORIES,
            "seed": SEED,
            "designs": {label: list(entry) for label, entry in FIG10_DESIGNS.items()},
        },
    )
