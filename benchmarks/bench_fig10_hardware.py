"""Figure 10 — success and in-constraints rates under device noise models.

The paper runs the small-scale cases (F1, G1, K1) on three IBM devices (Fez,
Osaka, Sherbrooke).  We substitute the hardware with the depolarizing +
readout noise models calibrated from the gate fidelities quoted in Section
V-A (see DESIGN.md) and regenerate the same grid: per device and per case,
the success rate and in-constraints rate of every design.

Expected shape (paper): noise lowers every number, Fez (native CZ, 99.7%)
beats the ECR devices, and Choco-Q keeps the highest in-constraints rate
(2.43x average improvement) and success rate (2.65x) across devices.
"""

from __future__ import annotations

import numpy as np

from harness import engine_options, optimizer, percentage

from repro.analysis.report import print_table
from repro.problems import make_benchmark
from repro.qcircuit.noise import DEVICE_PROFILES, NoiseModel
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.hea import HEASolver
from repro.solvers.penalty_qaoa import PenaltyQAOASolver

CASES = ("F1", "G1", "K1")
DEVICES = ("fez", "osaka", "sherbrooke")
NOISY_SHOTS = 512
NOISY_ITERATIONS = 25


def _fig10_rows() -> list[dict]:
    rows = []
    for device in DEVICES:
        profile = DEVICE_PROFILES[device]
        for case in CASES:
            problem = make_benchmark(case)
            _, optimal_value = problem.brute_force_optimum()
            solvers = {
                "penalty": PenaltyQAOASolver(
                    num_layers=2,
                    optimizer=optimizer(NOISY_ITERATIONS),
                    options=engine_options(NoiseModel(profile, seed=1), shots=NOISY_SHOTS),
                ),
                "hea": HEASolver(
                    num_layers=1,
                    optimizer=optimizer(NOISY_ITERATIONS),
                    options=engine_options(NoiseModel(profile, seed=2), shots=NOISY_SHOTS),
                ),
                # Following the Table-II footnote, Choco-Q eliminates one
                # variable on hardware, trading measurement overhead for a
                # shallower (more noise-tolerant) circuit.
                "choco-q": ChocoQSolver(
                    config=ChocoQConfig(num_layers=1, num_eliminated_variables=1),
                    optimizer=optimizer(NOISY_ITERATIONS),
                    options=engine_options(NoiseModel(profile, seed=3), shots=NOISY_SHOTS),
                ),
            }
            row: dict = {"device": device, "case": case}
            for name, solver in solvers.items():
                result = solver.solve(problem)
                metrics = result.metrics(problem, optimal_value)
                row[f"success_%[{name}]"] = percentage(metrics.success_rate)
                row[f"in_cons_%[{name}]"] = percentage(metrics.in_constraints_rate)
            rows.append(row)
    return rows


def bench_fig10_hardware(benchmark):
    rows = benchmark.pedantic(_fig10_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Figure 10 — noisy-device success / in-constraints rates")
    # Choco-Q keeps a clear in-constraints lead over the penalty design and
    # stays competitive with the (much shallower) HEA circuits under noise.
    choco = np.mean([float(row["in_cons_%[choco-q]"]) for row in rows])
    penalty = np.mean([float(row["in_cons_%[penalty]"]) for row in rows])
    hea = np.mean([float(row["in_cons_%[hea]"]) for row in rows])
    print(f"\naverage in-constraints rate: choco={choco:.1f}% hea={hea:.1f}% penalty={penalty:.1f}%")
    assert choco > penalty
    assert choco > 0.7 * hea
