"""Figure 12 — Trotter decomposition versus Choco-Q's equivalent decomposition.

Panel (a): decomposition wall-clock time and memory usage versus the number
of qubits — the Trotter flow materialises exponentially large matrices and
times out beyond ~10 qubits, while Choco-Q's decomposition is linear-time and
constant-memory.  Panel (b): the resulting circuit depth — Trotter's repeated
opaque unitaries explode, Choco-Q's depth grows linearly with the qubit count.

The driver used at every size is the chain-hop driver (one u vector per
adjacent qubit pair), the same structure the paper's scaling study uses.
"""

from __future__ import annotations

import time

from harness import percentage  # noqa: F401  (imported for parity with other benches)

from repro.analysis.report import print_table
from repro.exceptions import HamiltonianError
from repro.hamiltonian.commute import CommuteDriver
from repro.hamiltonian.trotter import TrotterDecomposer
from repro.qcircuit.transpile import depth_after_transpile

QUBIT_SIZES = (4, 6, 8, 10, 12)
TROTTER_LIMIT = 10  # beyond this the conventional flow "times out" (Fig. 12a)


def _chain_driver(num_qubits: int) -> CommuteDriver:
    solutions = []
    for i in range(num_qubits - 1):
        u = [0] * num_qubits
        u[i], u[i + 1] = 1, -1
        solutions.append(tuple(u))
    return CommuteDriver.from_solutions(solutions)


def _fig12_rows() -> list[dict]:
    rows = []
    for size in QUBIT_SIZES:
        driver = _chain_driver(size)
        row: dict = {"qubits": size}

        if size <= TROTTER_LIMIT:
            decomposer = TrotterDecomposer(repetitions=64, max_qubits=TROTTER_LIMIT)
            try:
                _, report = decomposer.decompose(driver, beta=0.5)
                row["trotter_time_s"] = round(report.decomposition_seconds, 4)
                row["trotter_memory_MB"] = round(report.memory_bytes / 1e6, 3)
                row["trotter_depth"] = report.circuit_depth
            except HamiltonianError:
                row["trotter_time_s"] = "timeout"
                row["trotter_memory_MB"] = "timeout"
                row["trotter_depth"] = "timeout"
        else:
            row["trotter_time_s"] = "timeout"
            row["trotter_memory_MB"] = "timeout"
            row["trotter_depth"] = "timeout"

        start = time.perf_counter()
        circuit = driver.serialized_circuit(0.5)
        depth = depth_after_transpile(circuit)
        elapsed = time.perf_counter() - start
        row["choco_time_s"] = round(elapsed, 4)
        row["choco_memory_MB"] = round(
            sum(2 ** len(term.support) * 16 for term in driver.terms) / 1e6, 6
        )
        row["choco_depth"] = depth
        rows.append(row)
    return rows


def bench_fig12_decomposition(benchmark):
    rows = benchmark.pedantic(_fig12_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Figure 12 — decomposition cost and circuit depth vs. qubits")
    small = rows[0]
    largest_with_trotter = [row for row in rows if row["trotter_depth"] != "timeout"][-1]
    # Choco-Q is faster, smaller and shallower wherever Trotter still runs.
    assert largest_with_trotter["choco_time_s"] <= largest_with_trotter["trotter_time_s"]
    assert largest_with_trotter["choco_depth"] < largest_with_trotter["trotter_depth"]
    # Choco-Q depth grows roughly linearly: the largest size is within a
    # small factor of a linear extrapolation from the smallest.
    scale = rows[-1]["qubits"] / small["qubits"]
    assert rows[-1]["choco_depth"] <= 3 * scale * small["choco_depth"]
    # Beyond the limit, the conventional flow times out but Choco-Q still runs.
    assert rows[-1]["trotter_depth"] == "timeout"
    assert isinstance(rows[-1]["choco_depth"], int)
