"""Table I — feature comparison of QAOA designs on a graph coloring case.

The paper's Table I compares the four designs on a 15-qubit graph coloring
instance along three quantitative axes: in-constraints rate, success rate and
end-to-end latency.  This benchmark regenerates those rows on the G2-scale
case of our suite (the largest GCP case whose penalty/HEA baselines still run
in seconds on a laptop simulator).

Expected shape (paper): Choco-Q reaches a 100% in-constraints rate and a
success rate orders of magnitude above every baseline, at a lower end-to-end
latency driven by its smaller iteration count.
"""

from __future__ import annotations

from harness import percentage, run_lineup_plan

from repro.analysis.report import print_table


def _table1_rows() -> list[dict]:
    runs = run_lineup_plan(["G2"])["G2"]
    rows = []
    for name, run in runs.items():
        rows.append(
            {
                "method": name,
                "in_constraints_%": percentage(run.in_constraints_rate),
                "success_%": percentage(run.success_rate),
                "end_to_end_latency_s": f"{run.latency_s:.2f}",
                "iterations": run.iterations,
            }
        )
    return rows


def bench_table1(benchmark):
    rows = benchmark.pedantic(_table1_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Table I — QAOA designs on graph coloring (G2 scale)")
    by_method = {row["method"]: row for row in rows}
    assert float(by_method["choco-q"]["in_constraints_%"]) == 100.0
    assert float(by_method["choco-q"]["success_%"]) >= float(by_method["penalty"]["success_%"])
    assert float(by_method["choco-q"]["success_%"]) >= float(by_method["cyclic"]["success_%"])
