"""Feasible-subspace backend — dense-vs-subspace roofline comparison.

Choco-Q's evolution never leaves the feasible subspace ``F``, so the
``subspace`` backend simulates each COBYLA iteration over ``|F|`` amplitudes
instead of ``2^n``.  Following the roofline-style methodology of HPC AI500,
this benchmark measures the quantity that bounds end-to-end solver throughput
— the per-iteration ansatz evolution — on the seed problem suite:

* columns ``2^n`` vs ``|F|`` show the state compression;
* per-iteration wall-clock for both backends and their ratio show the
  crossover: at toy scales the dense path's flat NumPy vectorisation wins,
  but the subspace advantage grows with the register until it dominates
  (the ratio must exceed 5x on the largest constrained case, where
  ``|F| << 2^n``);
* every row is only reported after both backends agree on the evolved state
  to ``AGREEMENT_TOLERANCE`` (1e-9), so the speedup is never bought with
  accuracy.

Run directly (``python benchmarks/bench_subspace_speedup.py``) or through
pytest-benchmark like the sibling benchmarks
(``pytest benchmarks/bench_subspace_speedup.py -o python_functions="bench_*"``
— without the ``python_functions`` override pytest collects nothing).
"""

from __future__ import annotations

from harness import (
    check_speedup_rows,
    max_backend_error,
    print_speedup_rows,
    time_call,
    write_bench_json,
)

from repro.problems import make_benchmark
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import EngineOptions

CASES = ("F1", "G1", "K1", "K2", "G3", "G4")
LARGE_CASE = "G4"
NUM_LAYERS = 2
REPEATS = 5
AGREEMENT_TOLERANCE = 1e-9
TARGET_SPEEDUP = 5.0


def _build_specs(problem, num_layers: int):
    """Dense and subspace AnsatzSpecs for the same problem and layer count."""
    optimizer = CobylaOptimizer(max_iterations=1)
    options = EngineOptions(shots=1, seed=0)
    dense_solver = ChocoQSolver(
        ChocoQConfig(num_layers=num_layers, backend="dense"), optimizer, options
    )
    subspace_solver = ChocoQSolver(
        ChocoQConfig(num_layers=num_layers, backend="subspace"), optimizer, options
    )
    dense_spec, _ = dense_solver.build_spec(problem)
    subspace_spec, _ = subspace_solver.build_spec(problem)
    return dense_spec, subspace_spec


def verify_backend_agreement(
    problem, num_layers: int = NUM_LAYERS, num_parameter_sets: int = 3, specs=None
) -> float:
    """Max |dense - lifted subspace| amplitude error over random parameters.

    ``specs`` may pass prebuilt ``(dense_spec, subspace_spec)`` so callers
    timing the same specs do not pay the feasible-set enumeration and
    pairing precompute twice.
    """
    dense_spec, subspace_spec = specs if specs is not None else _build_specs(problem, num_layers)
    return max_backend_error(dense_spec, subspace_spec, num_parameter_sets)


def run_subspace_speedup(
    cases=CASES, num_layers: int = NUM_LAYERS, repeats: int = REPEATS
) -> list[dict]:
    """One table row per case: sizes, agreement, per-iteration times, speedup."""
    rows = []
    for case in cases:
        problem = make_benchmark(case)
        dense_spec, subspace_spec = specs = _build_specs(problem, num_layers)
        agreement = verify_backend_agreement(problem, num_layers, specs=specs)
        parameters = dense_spec.initial_parameters
        dense_seconds = time_call(lambda: dense_spec.evolve(parameters), repeats)
        subspace_seconds = time_call(lambda: subspace_spec.evolve(parameters), repeats)
        rows.append(
            {
                "case": case,
                "qubits": problem.num_variables,
                "2^n": 2**problem.num_variables,
                "|F|": subspace_spec.metadata["subspace_size"],
                "max_err": agreement,
                "dense_ms/iter": dense_seconds * 1e3,
                "subspace_ms/iter": subspace_seconds * 1e3,
                "speedup": dense_seconds / subspace_seconds,
            }
        )
    return rows


def check_rows(rows: list[dict]) -> None:
    """The benchmark's acceptance assertions."""
    check_speedup_rows(rows, LARGE_CASE, "|F|", TARGET_SPEEDUP, AGREEMENT_TOLERANCE)


def print_rows(rows: list[dict]) -> None:
    print_speedup_rows(
        rows, title="Feasible-subspace backend — per-iteration evolution speedup"
    )


def bench_subspace_speedup(benchmark):
    rows = benchmark.pedantic(run_subspace_speedup, rounds=1, iterations=1)
    print()
    print_rows(rows)
    check_rows(rows)


if __name__ == "__main__":
    table_rows = run_subspace_speedup()
    print_rows(table_rows)
    check_rows(table_rows)
    json_path = write_bench_json(
        "subspace_speedup",
        table_rows,
        metadata={"num_layers": NUM_LAYERS, "repeats": REPEATS, "target_speedup": TARGET_SPEEDUP},
    )
    print(f"trajectory written to {json_path}")
    print("all backend-agreement and speedup checks passed")
