"""Cyclic-QAOA subspace backend — dense-vs-subspace roofline comparison.

The cyclic baseline's ring mixers conserve the excitation number of every
encoded summation chain, so its evolution never leaves the feasible set of
the *encoded* constraint rows — the same invariant the Choco-Q ``subspace``
backend exploits (``bench_subspace_speedup.py``).  This benchmark measures
the per-iteration ansatz evolution of :class:`CyclicQAOASolver` on both
state layouts across the seed suite:

* ``2^n`` vs ``|F_enc|`` shows the compression of the encoded sector (the
  unencoded constraints stay soft, so ``|F_enc|`` exceeds the fully-feasible
  ``|F|`` — the ring driver simply cannot restrict further);
* per-iteration wall-clock for both backends and their ratio must clear
  ``TARGET_SPEEDUP`` (10x) on the 16-qubit ``LARGE_CASE``;
* a ``sweep`` column times the batched ``(k, |F_enc|)`` evolution of
  ``SWEEP_SIZE`` parameter vectors against evolving them one by one,
  showing what vectorised COBYLA restarts / parameter sweeps save;
* every row is only reported after both backends agree on the evolved state
  to ``AGREEMENT_TOLERANCE`` (1e-9).

Run directly (``python benchmarks/bench_cyclic_subspace.py``) or through
pytest-benchmark like the sibling benchmarks
(``pytest benchmarks/bench_cyclic_subspace.py -o python_functions="bench_*"``).
"""

from __future__ import annotations

import numpy as np

from harness import (
    check_speedup_rows,
    max_backend_error,
    print_speedup_rows,
    time_call,
    write_bench_json,
)

from repro.problems import make_benchmark
from repro.solvers.cyclic_qaoa import CyclicQAOASolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import EngineOptions, evolve_parameter_sets

CASES = ("F1", "G1", "K1", "K2", "G4", "K4")
LARGE_CASE = "K4"  # 16 qubits, all constraints one-hot pairs: |F_enc| = 256
NUM_LAYERS = 2
REPEATS = 5
SWEEP_SIZE = 8
AGREEMENT_TOLERANCE = 1e-9
TARGET_SPEEDUP = 10.0


def _build_specs(problem, num_layers: int):
    """Dense and subspace AnsatzSpecs for the same problem and layer count."""
    optimizer = CobylaOptimizer(max_iterations=1)
    options = EngineOptions(shots=1, seed=0)
    dense_spec = CyclicQAOASolver(
        num_layers=num_layers, optimizer=optimizer, options=options, backend="dense"
    ).build_spec(problem)
    subspace_spec = CyclicQAOASolver(
        num_layers=num_layers, optimizer=optimizer, options=options, backend="subspace"
    ).build_spec(problem)
    return dense_spec, subspace_spec


def verify_backend_agreement(
    problem, num_layers: int = NUM_LAYERS, num_parameter_sets: int = 3, specs=None
) -> float:
    """Max |dense - lifted subspace| amplitude error over random parameters."""
    dense_spec, subspace_spec = specs if specs is not None else _build_specs(problem, num_layers)
    return max_backend_error(dense_spec, subspace_spec, num_parameter_sets)


def run_cyclic_subspace(
    cases=CASES, num_layers: int = NUM_LAYERS, repeats: int = REPEATS
) -> list[dict]:
    """One table row per case: sizes, agreement, per-iteration times, speedups."""
    rows = []
    for case in cases:
        problem = make_benchmark(case)
        dense_spec, subspace_spec = specs = _build_specs(problem, num_layers)
        agreement = verify_backend_agreement(problem, num_layers, specs=specs)
        parameters = dense_spec.initial_parameters
        dense_seconds = time_call(lambda: dense_spec.evolve(parameters), repeats)
        subspace_seconds = time_call(lambda: subspace_spec.evolve(parameters), repeats)
        # Batched sweep: k parameter vectors in one (k, |F_enc|) pass vs a
        # Python loop of k sequential evolutions on the same layout.
        sweep = np.tile(parameters, (SWEEP_SIZE, 1))
        batched_seconds = time_call(
            lambda: evolve_parameter_sets(subspace_spec, sweep), repeats
        )
        looped_seconds = time_call(
            lambda: [subspace_spec.evolve(p) for p in sweep], repeats
        )
        rows.append(
            {
                "case": case,
                "qubits": problem.num_variables,
                "2^n": 2**problem.num_variables,
                "|F_enc|": subspace_spec.metadata["subspace_size"],
                "max_err": agreement,
                "dense_ms/iter": dense_seconds * 1e3,
                "subspace_ms/iter": subspace_seconds * 1e3,
                "speedup": dense_seconds / subspace_seconds,
                "sweep_speedup": looped_seconds / batched_seconds,
            }
        )
    return rows


def check_rows(rows: list[dict]) -> None:
    """The benchmark's acceptance assertions."""
    large = check_speedup_rows(
        rows, LARGE_CASE, "|F_enc|", TARGET_SPEEDUP, AGREEMENT_TOLERANCE
    )
    assert large["qubits"] == 16, "the large case must be a 16-qubit register"


def print_rows(rows: list[dict]) -> None:
    print_speedup_rows(
        rows, title="Cyclic-QAOA subspace backend — per-iteration evolution speedup"
    )


def bench_cyclic_subspace(benchmark):
    rows = benchmark.pedantic(run_cyclic_subspace, rounds=1, iterations=1)
    print()
    print_rows(rows)
    check_rows(rows)


if __name__ == "__main__":
    table_rows = run_cyclic_subspace()
    print_rows(table_rows)
    check_rows(table_rows)
    json_path = write_bench_json(
        "cyclic_subspace",
        table_rows,
        metadata={
            "num_layers": NUM_LAYERS,
            "repeats": REPEATS,
            "sweep_size": SWEEP_SIZE,
            "target_speedup": TARGET_SPEEDUP,
        },
    )
    print(f"trajectory written to {json_path}")
    print("all backend-agreement and speedup checks passed")
