"""Load-generator benchmark for the solve service.

Drives :class:`repro.service.SolveService` with concurrent request waves in
the HPC AI500 style — throughput (requests/s) alongside tail latency
(p50/p99) — across the three traffic shapes the service is built for:

* ``cold-unique``   — every request is new work: pure execution throughput
  through the bounded worker pool (the floor every other scenario builds
  on).
* ``dedup-burst``   — many concurrent requests over few unique specs: the
  in-flight dedup collapses each unique spec onto one execution.
* ``warm-repeat``   — the same traffic replayed against the warmed store:
  answers come straight from the content-hash result store, no solver
  calls.
* ``sweep-coalesce``— concurrent expectation sweeps on one ansatz: pending
  requests collapse into single ``batched_expectations`` passes.

Writes ``BENCH_service_throughput.json`` (requests/s, cache-hit ratio,
dedup ratio, p50/p99 latency per scenario) via the shared
``write_bench_json`` schema, gated by the artifact-hygiene lint rule.
Run with ``make bench-service``; excluded from CI (wall-clock heavy).
"""

from __future__ import annotations

import asyncio
import time

from harness import latency_percentiles, print_speedup_rows, write_bench_json

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.run import RunSpec, register_benchmark, unregister_benchmark
from repro.service import SolveService, SweepRequest

BENCHMARK_NAME = "service-bench-one-hot"
WORKERS = 4
SHOTS = 64
MAX_ITERATIONS = 6
NUM_UNIQUE = 24
BURST_REQUESTS = 96
SWEEP_REQUESTS = 64


def bench_problem() -> ConstrainedBinaryProblem:
    """4-variable one-hot instance: real solver work at service time scales."""
    return ConstrainedBinaryProblem(
        num_variables=4,
        objective=Objective.from_linear([2.0, 1.0, 3.0, 2.5]),
        constraints=[LinearConstraint((1.0, 1.0, 1.0, 1.0), 1.0)],
        sense="min",
        name=BENCHMARK_NAME,
    )


def spec_for_seed(seed: int) -> RunSpec:
    return RunSpec(
        solver="choco-q",
        benchmark=BENCHMARK_NAME,
        config={"num_layers": 1},
        seed=seed,
        shots=SHOTS,
        max_iterations=MAX_ITERATIONS,
    )


async def run_wave(service: SolveService, coroutines) -> tuple[list[float], float]:
    """Fire one concurrent wave; per-request latencies plus wall seconds."""

    async def timed(coroutine) -> float:
        start = time.perf_counter()
        await coroutine
        return time.perf_counter() - start

    wave_start = time.perf_counter()
    latencies = list(await asyncio.gather(*(timed(c) for c in coroutines)))
    return latencies, time.perf_counter() - wave_start


def scenario_row(
    name: str,
    requests: int,
    unique: int,
    latencies: "list[float]",
    wall_s: float,
    before: dict,
    after: dict,
) -> dict:
    executed = after["executed"] - before["executed"]
    store_hits = after["store_hits"] - before["store_hits"]
    deduped = after["deduped"] - before["deduped"]
    return {
        "scenario": name,
        "requests": requests,
        "unique_specs": unique,
        "executed": executed,
        "requests_per_s": round(requests / wall_s, 2),
        "cache_hit_ratio": round(store_hits / requests, 4),
        "dedup_ratio": round(deduped / requests, 4),
        **latency_percentiles(latencies),
    }


async def run_benchmark() -> list[dict]:
    rows = []
    # Purely in-memory store (no path): the file load the checker sees on
    # ResultStore's construction path never happens here.
    async with SolveService(max_workers=WORKERS) as service:  # repro: ignore[concurrency]
        # -- cold-unique: every spec is new work --------------------------
        specs = [spec_for_seed(seed) for seed in range(NUM_UNIQUE)]
        before = service.stats()
        latencies, wall_s = await run_wave(service, [service.solve(s) for s in specs])
        rows.append(
            scenario_row("cold-unique", NUM_UNIQUE, NUM_UNIQUE,
                         latencies, wall_s, before, service.stats())
        )

        # -- dedup-burst: heavy repetition over few NEW unique specs ------
        unique = NUM_UNIQUE // 4
        burst_specs = [
            spec_for_seed(1000 + index % unique) for index in range(BURST_REQUESTS)
        ]
        before = service.stats()
        latencies, wall_s = await run_wave(
            service, [service.solve(s) for s in burst_specs]
        )
        rows.append(
            scenario_row("dedup-burst", BURST_REQUESTS, unique,
                         latencies, wall_s, before, service.stats())
        )
        assert rows[-1]["executed"] == unique, (
            f"dedup burst executed {rows[-1]['executed']}, wanted {unique}"
        )

        # -- warm-repeat: same traffic against the warmed store -----------
        before = service.stats()
        latencies, wall_s = await run_wave(
            service, [service.solve(s) for s in specs + burst_specs]
        )
        rows.append(
            scenario_row("warm-repeat", len(specs) + len(burst_specs),
                         NUM_UNIQUE + unique, latencies, wall_s,
                         before, service.stats())
        )
        assert rows[-1]["cache_hit_ratio"] == 1.0, "warm wave must be all store hits"
        assert rows[-1]["executed"] == 0, "warm wave must execute nothing"

        # -- sweep-coalesce: concurrent sweeps on one compiled ansatz -----
        sweeps = [
            SweepRequest(
                solver="choco-q",
                benchmark=BENCHMARK_NAME,
                config={"num_layers": 1},
                parameter_sets=[[0.01 * index, 0.02 * index]],
            )
            for index in range(SWEEP_REQUESTS)
        ]
        before = service.stats()
        latencies, wall_s = await run_wave(service, [service.sweep(s) for s in sweeps])
        after = service.stats()
        batches = after["sweep_batches"] - before["sweep_batches"]
        rows.append(
            {
                "scenario": "sweep-coalesce",
                "requests": SWEEP_REQUESTS,
                "unique_specs": 1,
                "executed": batches,
                "requests_per_s": round(SWEEP_REQUESTS / wall_s, 2),
                "cache_hit_ratio": 0.0,
                "dedup_ratio": round(
                    (after["sweeps_coalesced"] - before["sweeps_coalesced"])
                    / SWEEP_REQUESTS,
                    4,
                ),
                **latency_percentiles(latencies),
            }
        )
        assert batches < SWEEP_REQUESTS, "sweeps did not coalesce at all"
    return rows


def main() -> None:
    register_benchmark(BENCHMARK_NAME, bench_problem, replace=True)
    try:
        rows = asyncio.run(run_benchmark())
    finally:
        unregister_benchmark(BENCHMARK_NAME)

    for row in rows:
        assert row["requests_per_s"] > 0
    print_speedup_rows(rows, "Solve-service throughput/latency")
    path = write_bench_json(
        "service_throughput",
        rows,
        metadata={
            "workers": WORKERS,
            "shots": SHOTS,
            "max_iterations": MAX_ITERATIONS,
            "solver": "choco-q",
            "problem": "4-variable one-hot (choco-q, 1 layer)",
            "executor": "in-process thread pool",
        },
    )
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
