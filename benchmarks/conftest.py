"""Make the benchmark harness importable when pytest collects benchmarks/."""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
