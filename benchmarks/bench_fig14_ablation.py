"""Figure 14 — ablation of the three optimization passes.

Compares the four configurations Opt1, Opt1+2, Opt1+3, Opt1+2+3 (serialization
always on; equivalent decomposition and variable elimination toggled) in
terms of transpiled circuit depth and success rate under the IBM noise model,
averaged over one case per domain.

Expected shape (paper): the equivalent decomposition (Opt2) is the largest
depth saver (~5.7x there), variable elimination (Opt3) adds a further
reduction, and the success-rate ranking follows the depth ranking under
noise.
"""

from __future__ import annotations

import numpy as np

from harness import percentage

from repro.analysis.ablation import run_ablation
from repro.analysis.report import print_table
from repro.problems import make_benchmark
from repro.qcircuit.noise import IBM_FEZ, NoiseModel

CASES = ("F1", "G1", "K1")


def _fig14_rows() -> list[dict]:
    accumulator: dict[str, dict[str, list[float]]] = {}
    for case in CASES:
        problem = make_benchmark(case)
        rows = run_ablation(
            problem,
            num_layers=1,
            shots=512,
            seed=9,
            noise_model=NoiseModel(IBM_FEZ, seed=9),
            max_iterations=20,
        )
        for row in rows:
            slot = accumulator.setdefault(row.label, {"depth": [], "success": []})
            slot["depth"].append(row.transpiled_depth)
            slot["success"].append(row.success_rate)
    result_rows = []
    for label, values in accumulator.items():
        result_rows.append(
            {
                "configuration": label,
                "avg_depth": round(float(np.mean(values["depth"])), 1),
                "avg_success_%": percentage(float(np.mean(values["success"]))),
            }
        )
    return result_rows


def bench_fig14_ablation(benchmark):
    rows = benchmark.pedantic(_fig14_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Figure 14 — ablation of Opt1/Opt2/Opt3 (avg over F1, G1, K1)")
    by_label = {row["configuration"]: row for row in rows}
    # The equivalent decomposition is the big depth saver.
    assert by_label["Opt1+2"]["avg_depth"] < by_label["Opt1"]["avg_depth"]
    assert by_label["Opt1+2+3"]["avg_depth"] <= by_label["Opt1+2"]["avg_depth"] * 1.1
