"""Transpiler optimization stack — gate-count reductions per circuit family.

The circuit-optimization passes (:mod:`repro.qcircuit.passes`) exist to cut
the gate counts the noise models charge for: every two-qubit gate removed
raises the analytical fidelity factor and shortens the Pauli-trajectory
circuits.  This benchmark records, per paper circuit family, what the default
pipeline actually removes relative to raw lowering (optimization level 0).

Two basis views per family:

* ``default`` — the package basis (``BASIS_GATES``): fusion and cancellation
  only, small wins from rotation merging at ladder junctions.
* ``+rzz`` — the basis extended with a native ``rzz`` (the myQLM
  ``cnots=False`` view, and what a pulse-level controller on Heron-class
  hardware exposes): the ladder-resynthesis pass collapses every lowered
  controlled-phase pair of CXs into one ``rzz``, the headline two-qubit
  reduction.

The acceptance gate rides the row data: the best family must clear
``TARGET_TWO_QUBIT_SPEEDUP`` (recorded as ``metadata.target_speedup`` in
``BENCH_transpile_optimization.json``, per the artifact-hygiene lint rule)
and at least one paper family must shed >= 20% of its two-qubit gates.
"""

from __future__ import annotations

from harness import write_bench_json

from repro.analysis.report import print_table
from repro.problems import make_benchmark
from repro.qcircuit import (
    BASIS_GATES,
    DEFAULT_OPTIMIZATION_LEVEL,
    QuantumCircuit,
    TranspileOptions,
    transpile_with_report,
)
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.cyclic_qaoa import CyclicQAOASolver

#: Gate on the best family's lowered/optimized two-qubit ratio.  F1 under the
#: ``+rzz`` basis measures 1.25x (20% reduction); gate a notch below so a
#: problem-generator tweak cannot flake the benchmark.
TARGET_TWO_QUBIT_SPEEDUP = 1.2

#: Reductions are percentages of the *lowered* counts (what level 0 emits).
_PERCENT = 100.0


def _choco_circuit(case: str) -> QuantumCircuit:
    problem = make_benchmark(case)
    spec, _ = ChocoQSolver(config=ChocoQConfig(num_layers=1)).build_spec(problem)
    return spec.build_circuit(spec.initial_parameters)


def _cyclic_circuit(case: str) -> QuantumCircuit:
    problem = make_benchmark(case)
    spec = CyclicQAOASolver(num_layers=2).build_spec(problem)
    return spec.build_circuit(spec.initial_parameters)


#: Family label -> circuit builder, the paper ansatz families the noise
#: models end up charging for.
FAMILIES = {
    "choco-q@F1": lambda: _choco_circuit("F1"),
    "choco-q@G1": lambda: _choco_circuit("G1"),
    "cyclic@F1": lambda: _cyclic_circuit("F1"),
}

#: Basis label -> basis gate set.
BASES = {
    "default": frozenset(BASIS_GATES),
    "+rzz": frozenset(BASIS_GATES | {"rzz"}),
}


def _rows() -> list[dict]:
    rows = []
    for family, build in FAMILIES.items():
        circuit = build()
        for basis_label, basis in BASES.items():
            options = TranspileOptions(
                basis_gates=basis, optimization_level=DEFAULT_OPTIMIZATION_LEVEL
            )
            _, report = transpile_with_report(circuit, options)
            lowered, optimized = report.lowered, report.optimized
            rows.append(
                {
                    "family": family,
                    "basis": basis_label,
                    "lowered_size": lowered.size,
                    "opt_size": optimized.size,
                    "lowered_depth": lowered.depth,
                    "opt_depth": optimized.depth,
                    "lowered_2q": lowered.two_qubit_gates,
                    "opt_2q": optimized.two_qubit_gates,
                    "size_red_%": round(_PERCENT * report.size_reduction(), 2),
                    "depth_red_%": round(_PERCENT * report.depth_reduction(), 2),
                    "two_qubit_red_%": round(
                        _PERCENT * report.two_qubit_reduction(), 2
                    ),
                    "two_qubit_speedup": round(
                        lowered.two_qubit_gates / max(optimized.two_qubit_gates, 1), 3
                    ),
                }
            )
    return rows


def _check_rows(rows: list[dict]) -> dict[str, float]:
    """Acceptance gates shared by the pytest and script entries.

    Raised explicitly (not ``assert``) so the ``__main__`` path that writes
    ``BENCH_transpile_optimization.json`` cannot record a regressed run
    under ``python -O``.
    """
    best_speedup = max(row["two_qubit_speedup"] for row in rows)
    best_reduction = max(row["two_qubit_red_%"] for row in rows)
    if best_speedup < TARGET_TWO_QUBIT_SPEEDUP:
        raise AssertionError(
            f"best two-qubit speedup {best_speedup:.3f}x below the "
            f"{TARGET_TWO_QUBIT_SPEEDUP}x gate"
        )
    if best_reduction < 20.0:
        raise AssertionError(
            f"no family sheds >= 20% two-qubit gates (best {best_reduction:.1f}%)"
        )
    for row in rows:
        if row["two_qubit_red_%"] < 0 or row["size_red_%"] < 0:
            raise AssertionError(
                f"{row['family']}/{row['basis']}: optimization made the "
                "circuit bigger"
            )
    return {"best_speedup": best_speedup, "best_reduction": best_reduction}


def bench_transpile_optimization(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Transpiler optimization — gate-count reductions")
    summary = _check_rows(rows)
    print(
        f"\nbest two-qubit speedup {summary['best_speedup']:.3f}x, "
        f"best reduction {summary['best_reduction']:.1f}%"
    )


if __name__ == "__main__":
    bench_rows = _rows()
    print_table(bench_rows, title="Transpiler optimization — gate-count reductions")
    bench_summary = _check_rows(bench_rows)
    print(
        f"best two-qubit speedup {bench_summary['best_speedup']:.3f}x, "
        f"best reduction {bench_summary['best_reduction']:.1f}%"
    )
    write_bench_json(
        "transpile_optimization",
        bench_rows,
        metadata={
            "optimization_level": DEFAULT_OPTIMIZATION_LEVEL,
            "families": sorted(FAMILIES),
            "bases": {label: sorted(basis) for label, basis in BASES.items()},
            "target_speedup": TARGET_TWO_QUBIT_SPEEDUP,
        },
    )
