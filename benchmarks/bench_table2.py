"""Table II — success rate, in-constraints rate, ARG and depth on all 12 scales.

This is the paper's main results table: for every benchmark scale (F1-F4,
G1-G4, K1-K4) and every design (Penalty, Cyclic, HEA, Choco-Q) it reports the
success rate, in-constraints rate, approximation ratio gap and the circuit
depth after decomposition into basic gates.

Expected shape (paper): Choco-Q has a 100% in-constraints rate everywhere, a
success rate far above every baseline (the paper quotes a >235x average
improvement over the cyclic baseline), an ARG below ~0.6, and a circuit depth
of the same order as the baselines.

Set ``REPRO_BENCH_SCALES`` (comma separated, e.g. ``F1,G1,K1``) to restrict
the run while iterating.
"""

from __future__ import annotations

import os

from harness import percentage, run_lineup_plan

from repro.analysis.report import print_table
from repro.problems import SCALE_NAMES, make_benchmark

_SCALES = [
    scale.strip().upper()
    for scale in os.environ.get("REPRO_BENCH_SCALES", ",".join(SCALE_NAMES)).split(",")
    if scale.strip()
]


def _table2_rows() -> list[dict]:
    runs_by_scale = run_lineup_plan(_SCALES)
    rows: list[dict] = []
    for scale in _SCALES:
        problem = make_benchmark(scale)
        row: dict = {"benchmark": scale, "variables": problem.num_variables,
                     "constraints": problem.num_constraints}
        for name, run in runs_by_scale[scale].items():
            row[f"success_%[{name}]"] = percentage(run.success_rate)
            row[f"in_cons_%[{name}]"] = percentage(run.in_constraints_rate)
            row[f"arg[{name}]"] = round(run.arg, 3)
            row[f"depth[{name}]"] = run.depth
        rows.append(row)
    return rows


def bench_table2(benchmark):
    rows = benchmark.pedantic(_table2_rows, rounds=1, iterations=1)
    print()
    print_table(
        rows,
        columns=["benchmark", "variables", "constraints"]
        + [f"success_%[{n}]" for n in ("penalty", "cyclic", "hea", "choco-q")]
        + [f"in_cons_%[{n}]" for n in ("penalty", "cyclic", "hea", "choco-q")],
        title="Table II (part 1) — success rate and in-constraints rate",
    )
    print()
    print_table(
        rows,
        columns=["benchmark"]
        + [f"arg[{n}]" for n in ("penalty", "cyclic", "hea", "choco-q")]
        + [f"depth[{n}]" for n in ("penalty", "cyclic", "hea", "choco-q")],
        title="Table II (part 2) — approximation ratio gap and circuit depth",
    )

    # Headline checks: Choco-Q keeps a 100% in-constraints rate on every
    # scale, never loses to the penalty baseline by more than statistical
    # noise (0.5 percentage points), keeps a bounded ARG, and dominates the
    # baselines by a wide margin on average across the suite.
    import numpy as np

    for row in rows:
        assert float(row["in_cons_%[choco-q]"]) == 100.0
        assert float(row["success_%[choco-q]"]) >= float(row["success_%[penalty]"]) - 0.5
        assert float(row["arg[choco-q]"]) <= 1.0
    mean_choco = np.mean([float(row["success_%[choco-q]"]) for row in rows])
    mean_penalty = np.mean([float(row["success_%[penalty]"]) for row in rows])
    mean_cyclic = np.mean([float(row["success_%[cyclic]"]) for row in rows])
    assert mean_choco > mean_penalty + 20.0
    assert mean_choco > mean_cyclic + 20.0
