"""Figure 7 — average success rate versus the number of repeated layers.

The paper sweeps the number of QAOA layers from 1 to 7 and shows that
Choco-Q's success rate starts high (>25%) and saturates quickly (the
serialized driver already covers every search direction), while the baselines
improve only marginally per extra layer and stay far below.

We sweep a reduced layer range on one small case per domain to keep the
regeneration laptop-fast; the qualitative separation is what matters.
"""

from __future__ import annotations

import numpy as np

from harness import engine_options, optimizer, percentage

from repro.analysis.report import print_table
from repro.problems import make_benchmark
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.cyclic_qaoa import CyclicQAOASolver
from repro.solvers.penalty_qaoa import PenaltyQAOASolver

LAYERS = (1, 2, 3, 4)
SCALES = ("F1", "G1", "K1")


def _fig7_rows() -> list[dict]:
    problems = [(scale, make_benchmark(scale)) for scale in SCALES]
    optima = {scale: problem.brute_force_optimum()[1] for scale, problem in problems}
    rows = []
    for layers in LAYERS:
        success: dict[str, list[float]] = {"penalty": [], "cyclic": [], "choco-q": []}
        for scale, problem in problems:
            solvers = {
                "penalty": PenaltyQAOASolver(
                    num_layers=layers, optimizer=optimizer(), options=engine_options()
                ),
                "cyclic": CyclicQAOASolver(
                    num_layers=layers, optimizer=optimizer(), options=engine_options()
                ),
                "choco-q": ChocoQSolver(
                    config=ChocoQConfig(num_layers=layers),
                    optimizer=optimizer(),
                    options=engine_options(),
                ),
            }
            for name, solver in solvers.items():
                result = solver.solve(problem)
                metrics = result.metrics(problem, optima[scale])
                success[name].append(metrics.success_rate)
        rows.append(
            {
                "layers": layers,
                **{
                    f"avg_success_%[{name}]": percentage(float(np.mean(values)))
                    for name, values in success.items()
                },
            }
        )
    return rows


def bench_fig07_layers(benchmark):
    rows = benchmark.pedantic(_fig7_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Figure 7 — average success rate vs. number of layers")
    # Choco-Q dominates at every layer count and is already usable at 1 layer
    # (the paper quotes >25% there; our reduced-basis driver starts a bit
    # lower but clearly above the baselines).
    for row in rows:
        assert float(row["avg_success_%[choco-q]"]) >= float(row["avg_success_%[penalty]"])
    assert float(rows[0]["avg_success_%[choco-q]"]) > 10.0
    # Extra layers never hurt dramatically and the best sweep point is high.
    assert max(float(row["avg_success_%[choco-q]"]) for row in rows) > 50.0
