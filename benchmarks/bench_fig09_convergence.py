"""Figure 9 — convergence speed (a) and harvested parallelism (b).

Panel (a): Choco-Q reaches the optimal cost within ~30 optimizer iterations
and is within 20% of it after a handful, while the baselines start from a
penalty-dominated cost orders of magnitude above the optimum and stay far
away.  Panel (b): although Choco-Q starts from a single basis state, the
number of simultaneously populated basis states grows rapidly once the
commute driver acts (around the first quarter of the circuit).

Both panels are regenerated on the F1 (2F-1D) case used by the paper.
"""

from __future__ import annotations

from harness import engine_options, optimizer

import repro
from repro.analysis.convergence import compare_convergence
from repro.analysis.parallelism import parallelism_profile
from repro.analysis.report import print_table
from repro.problems import make_benchmark
from repro.run import make_solver

#: registry name -> per-design layer count (the paper's Fig. 9 settings).
_FIG9_LAYERS = {"penalty-qaoa": 3, "cyclic-qaoa": 3, "hea": 2, "choco-q": 2}


def _fig9_data() -> tuple[list[dict], list[dict]]:
    problem = make_benchmark("F1")
    results = {
        name: repro.solve(
            problem, solver=name, num_layers=layers,
            optimizer=optimizer(100), options=engine_options(),
        )
        for name, layers in _FIG9_LAYERS.items()
    }
    convergence_rows = compare_convergence(problem, list(results.values()), gap=0.2)

    # Panel (b): support-size growth through the Choco-Q circuit.
    choco = make_solver("choco-q", num_layers=2, optimizer=optimizer(20), options=engine_options())
    spec, _ = choco.build_spec(problem)
    # The circuit prepares its own feasible initial state from |0...0>.
    circuit = spec.build_circuit(spec.initial_parameters)
    profile = parallelism_profile("choco-q", circuit)
    parallelism_rows = [
        {
            "circuit_progress_%": int(100 * fraction),
            "measured_states": profile.support_at_progress(fraction),
        }
        for fraction in (0.1, 0.25, 0.5, 0.75, 1.0)
    ]
    return convergence_rows, parallelism_rows


def bench_fig09_convergence(benchmark):
    convergence_rows, parallelism_rows = benchmark.pedantic(_fig9_data, rounds=1, iterations=1)
    print()
    print_table(convergence_rows, title="Figure 9(a) — convergence on F1 (iterations to 20% gap)")
    print()
    print_table(parallelism_rows, title="Figure 9(b) — Choco-Q parallelism (measured states)")
    by_solver = {row["solver"]: row for row in convergence_rows}
    choco_to_gap = by_solver["choco-q"]["iterations_to_gap"]
    assert choco_to_gap is not None
    for name in ("penalty-qaoa", "hea"):
        other = by_solver[name]["iterations_to_gap"]
        assert other is None or choco_to_gap <= other
    # Parallelism grows beyond the single initial basis state.
    assert parallelism_rows[-1]["measured_states"] > 1
