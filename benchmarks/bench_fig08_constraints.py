"""Figure 8 — success rate and circuit depth versus the number of constraints.

The paper plots, over the graph benchmarks, how the success rate of each
design degrades as the constraint count grows; Choco-Q's advantage widens,
and beyond ~12 constraints the baselines collapse to ~0 while Choco-Q stays
above 10%.

We sweep the GCP scales (increasing edge count = increasing constraint count)
and report success rate per design plus Choco-Q's transpiled depth, which the
figure's second axis tracks.
"""

from __future__ import annotations

from harness import percentage, run_lineup_plan

from repro.analysis.report import print_table
from repro.problems import make_benchmark

GCP_SCALES = ("G1", "G2", "G3", "G4")


def _fig8_rows() -> list[dict]:
    runs_by_scale = run_lineup_plan(GCP_SCALES)
    rows = []
    for scale in GCP_SCALES:
        problem = make_benchmark(scale)
        runs = runs_by_scale[scale]
        rows.append(
            {
                "benchmark": scale,
                "num_constraints": problem.num_constraints,
                **{
                    f"success_%[{name}]": percentage(run.success_rate)
                    for name, run in runs.items()
                },
                "choco_depth": runs["choco-q"].depth,
            }
        )
    rows.sort(key=lambda row: row["num_constraints"])
    return rows


def bench_fig08_constraints(benchmark):
    rows = benchmark.pedantic(_fig8_rows, rounds=1, iterations=1)
    print()
    print_table(rows, title="Figure 8 — success rate vs. number of constraints (GCP)")
    # The advantage persists at the largest constraint count.
    last = rows[-1]
    assert float(last["success_%[choco-q]"]) >= float(last["success_%[penalty]"])
    assert float(last["success_%[choco-q]"]) >= float(last["success_%[cyclic]"])
    assert float(last["success_%[choco-q]"]) > 10.0
