"""Figure 11 — end-to-end latency comparison and breakdown.

Panel (a): end-to-end latency (compilation + iterative quantum execution +
classical parameter updates) of every design on F1/G1/K1 per device; the
paper reports a 2.97x - 5.84x speedup for Choco-Q, driven by its much smaller
iteration count.  Panel (b): the latency breakdown of Choco-Q itself, where
iterative execution dominates (~70%) and compilation stays well under a
second.

Our latency numbers come from the analytical device-calibrated model of
``repro.solvers.latency`` (see DESIGN.md); the relative factors are the
reproduction target, not the absolute seconds.
"""

from __future__ import annotations

import numpy as np

from harness import engine_options, optimizer

from repro.analysis.report import print_table
from repro.problems import make_benchmark
from repro.qcircuit.noise import IBM_FEZ
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.cyclic_qaoa import CyclicQAOASolver
from repro.solvers.hea import HEASolver
from repro.solvers.latency import LatencyModel
from repro.solvers.penalty_qaoa import PenaltyQAOASolver

CASES = ("F1", "G1", "K1")


def _fig11_data() -> tuple[list[dict], list[dict]]:
    latency_model = LatencyModel(IBM_FEZ)
    rows = []
    breakdown_rows = []
    for case in CASES:
        problem = make_benchmark(case)
        _, optimal_value = problem.brute_force_optimum()
        solvers = {
            "penalty": PenaltyQAOASolver(
                num_layers=3, optimizer=optimizer(100), options=engine_options()
            ),
            "cyclic": CyclicQAOASolver(
                num_layers=3, optimizer=optimizer(100), options=engine_options()
            ),
            "hea": HEASolver(num_layers=2, optimizer=optimizer(100), options=engine_options()),
            "choco-q": ChocoQSolver(
                config=ChocoQConfig(num_layers=2),
                optimizer=optimizer(100),
                options=engine_options(),
            ),
        }
        row: dict = {"case": case}
        for name, solver in solvers.items():
            solver.options.latency_model = latency_model
            result = solver.solve(problem)
            row[f"latency_s[{name}]"] = round(result.latency.total, 3)
            if name == "choco-q":
                breakdown_rows.append(
                    {
                        "case": case,
                        "compilation_s": round(result.latency.compilation, 4),
                        "quantum_s": round(result.latency.quantum_execution, 3),
                        "classical_s": round(result.latency.classical_processing, 3),
                        "iterations": result.metadata.get("iterations", 0),
                    }
                )
        rows.append(row)
    return rows, breakdown_rows


def bench_fig11_latency(benchmark):
    rows, breakdown_rows = benchmark.pedantic(_fig11_data, rounds=1, iterations=1)
    print()
    print_table(rows, title="Figure 11(a) — end-to-end latency on the Fez model (seconds)")
    print()
    print_table(breakdown_rows, title="Figure 11(b) — Choco-Q latency breakdown")
    # The iterative quantum execution dominates compilation (Fig. 11b), and
    # Choco-Q stays within the same latency ballpark as the deepest baseline
    # (the cyclic driver) while converging in fewer iterations.
    speedups = [row["latency_s[cyclic]"] / row["latency_s[choco-q]"] for row in rows]
    print(f"\naverage speedup over the cyclic baseline: {np.mean(speedups):.2f}x")
    # On our scaled-down instances every baseline converges quickly, so the
    # paper's 2.97-5.84x gap shrinks; the reproduction target is that Choco-Q
    # stays in the same latency ballpark (its deeper circuit is offset by the
    # smaller iteration count) and that iterative quantum execution dominates
    # its own breakdown.  See EXPERIMENTS.md for the discussion.
    assert np.mean(speedups) > 0.25
    for breakdown in breakdown_rows:
        assert breakdown["quantum_s"] > breakdown["compilation_s"]
