"""Shared helpers for the benchmark suite.

Every ``bench_*.py`` file reproduces one table or figure of the paper.  The
helpers here build the standard solver line-up (Penalty, Cyclic, HEA,
Choco-Q) and convert results into the plain-text rows the paper reports, so
the individual benchmark files stay focused on the experiment they
regenerate.  The main-table benchmarks (Table I/II, Fig. 8) drive the
line-up through the :mod:`repro.run` batch runner — a declarative
:class:`~repro.run.RunSpec` grid per scale — and the Fig. 10 device-noise
grid rides the same runner via the serializable ``noise`` field of
:class:`~repro.run.RunSpec` (each spec names its device profile, so noisy
results cache and parallelise like everything else).

Environment knobs (all optional):

* ``REPRO_BENCH_SHOTS``      — shots per circuit execution (default 2048)
* ``REPRO_BENCH_ITERATIONS`` — classical optimizer iteration cap (default 60)
* ``REPRO_BENCH_SEED``       — RNG seed shared by all benchmarks (default 17)
* ``REPRO_BENCH_WORKERS``    — batch-runner process workers (default 1)
* ``REPRO_BENCH_CACHE``      — JSONL path for the runner's result cache;
  re-running a finished table is then free
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import ConstrainedBinaryProblem
from repro.qcircuit.noise import NoiseModel
from repro.run import ExperimentPlan, RunRecord, RunSpec, run_plan
from repro.solvers.base import QuantumSolver, SolverResult
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.cyclic_qaoa import CyclicQAOASolver
from repro.solvers.hea import HEASolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.penalty_qaoa import PenaltyQAOASolver
from repro.solvers.variational import EngineOptions

SHOTS = int(os.environ.get("REPRO_BENCH_SHOTS", "2048"))
MAX_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "60"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "17"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
CACHE_PATH = os.environ.get("REPRO_BENCH_CACHE") or None

BASELINE_LAYERS = 3
CHOCO_LAYERS = 3

#: Table column label -> registry name, in the paper's presentation order.
LINEUP_NAMES = {
    "penalty": "penalty-qaoa",
    "cyclic": "cyclic-qaoa",
    "hea": "hea",
    "choco-q": "choco-q",
}


def engine_options(noise_model: NoiseModel | None = None, shots: int | None = None) -> EngineOptions:
    return EngineOptions(
        shots=shots if shots is not None else SHOTS,
        seed=SEED,
        noise_model=noise_model,
        noisy_trajectories=8,
    )


def optimizer(max_iterations: int | None = None) -> CobylaOptimizer:
    return CobylaOptimizer(max_iterations=max_iterations or MAX_ITERATIONS)


def solver_lineup(
    noise_model: NoiseModel | None = None,
    baseline_layers: int = BASELINE_LAYERS,
    choco_layers: int = CHOCO_LAYERS,
    choco_eliminated: int = 0,
    max_iterations: int | None = None,
    shots: int | None = None,
) -> dict[str, QuantumSolver]:
    """The four designs compared throughout the evaluation section."""
    options = engine_options(noise_model, shots)
    return {
        "penalty": PenaltyQAOASolver(
            num_layers=baseline_layers, optimizer=optimizer(max_iterations), options=options
        ),
        "cyclic": CyclicQAOASolver(
            num_layers=baseline_layers, optimizer=optimizer(max_iterations), options=options
        ),
        "hea": HEASolver(
            num_layers=2, optimizer=optimizer(max_iterations), options=options
        ),
        "choco-q": ChocoQSolver(
            config=ChocoQConfig(num_layers=choco_layers, num_eliminated_variables=choco_eliminated),
            optimizer=optimizer(max_iterations),
            options=options,
        ),
    }


@dataclass
class SolverRun:
    """One (solver, problem) execution with its Table-II metrics attached."""

    solver_name: str
    result: SolverResult
    success_rate: float
    in_constraints_rate: float
    arg: float
    depth: int
    latency_s: float
    iterations: int


def run_solver(
    name: str,
    solver: QuantumSolver,
    problem: ConstrainedBinaryProblem,
    optimal_value: float | None = None,
) -> SolverRun:
    if optimal_value is None:
        _, optimal_value = problem.brute_force_optimum()
    result = solver.solve(problem)
    metrics = result.metrics(problem, optimal_value)
    return SolverRun(
        solver_name=name,
        result=result,
        success_rate=metrics.success_rate,
        in_constraints_rate=metrics.in_constraints_rate,
        arg=metrics.approximation_ratio_gap,
        depth=metrics.circuit_depth,
        latency_s=result.latency.total,
        iterations=int(result.metadata.get("iterations", 0)),
    )


def run_lineup(
    problem: ConstrainedBinaryProblem,
    solvers: dict[str, QuantumSolver] | None = None,
) -> dict[str, SolverRun]:
    """Run every solver of the line-up on one problem."""
    solvers = solvers if solvers is not None else solver_lineup()
    _, optimal_value = problem.brute_force_optimum()
    return {
        name: run_solver(name, solver, problem, optimal_value)
        for name, solver in solvers.items()
    }


# ---------------------------------------------------------------------------
# Batch-runner line-up (Table I/II, Fig. 8)
# ---------------------------------------------------------------------------


def lineup_configs(
    baseline_layers: int = BASELINE_LAYERS,
    choco_layers: int = CHOCO_LAYERS,
    choco_eliminated: int = 0,
) -> dict[str, dict]:
    """Per-label config overrides matching :func:`solver_lineup` exactly."""
    return {
        "penalty": {"num_layers": baseline_layers},
        "cyclic": {"num_layers": baseline_layers},
        "hea": {"num_layers": 2},
        "choco-q": {
            "num_layers": choco_layers,
            "num_eliminated_variables": choco_eliminated,
        },
    }


def lineup_plan(scales: "list[str] | tuple[str, ...]", **config_kwargs) -> ExperimentPlan:
    """A declarative (scale x line-up) grid with the shared bench settings."""
    configs = lineup_configs(**config_kwargs)
    specs = [
        RunSpec(
            solver=LINEUP_NAMES[label],
            benchmark=scale,
            config=configs[label],
            seed=SEED,
            shots=SHOTS,
            max_iterations=MAX_ITERATIONS,
            label=f"{label}@{scale}",
        )
        for scale in scales
        for label in LINEUP_NAMES
    ]
    return ExperimentPlan(specs=specs, name="lineup", base_seed=SEED)


def solver_run_from_record(label: str, record: RunRecord) -> SolverRun:
    """Adapt one batch-runner record into the row type the tables consume."""
    metrics = record.metrics
    return SolverRun(
        solver_name=label,
        result=record.solver_result(),
        success_rate=metrics["success_rate"],
        in_constraints_rate=metrics["in_constraints_rate"],
        arg=metrics["arg"],
        depth=metrics["depth"],
        latency_s=metrics["latency_s"],
        iterations=metrics["iterations"],
    )


def run_lineup_plan(
    scales: "list[str] | tuple[str, ...]", **config_kwargs
) -> dict[str, dict[str, SolverRun]]:
    """Run the line-up over ``scales`` through the batch runner.

    Returns ``{scale: {label: SolverRun}}`` with labels in presentation
    order.  Worker count and JSONL caching come from the
    ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_CACHE`` environment knobs.
    """
    plan = lineup_plan(scales, **config_kwargs)
    records = run_plan(plan, max_workers=WORKERS, jsonl_path=CACHE_PATH)
    labels = list(LINEUP_NAMES)
    by_scale: dict[str, dict[str, SolverRun]] = {}
    for spec, record in zip(plan.specs, records):
        label = spec.label.split("@", 1)[0]
        by_scale.setdefault(spec.benchmark, {})[label] = solver_run_from_record(label, record)
    return {
        scale: {label: runs[label] for label in labels}
        for scale, runs in by_scale.items()
    }


def percentage(value: float) -> float:
    """A rate as a percent, rounded to 2 decimals.

    Returns a JSON *number*: these values land in ``BENCH_*.json`` rows,
    and the artifact-hygiene lint rule rejects numbers serialized as
    strings (gates cannot compare them).
    """
    return round(100.0 * value, 2)


# ---------------------------------------------------------------------------
# Dense-vs-subspace roofline helpers
# (shared by bench_subspace_speedup.py and bench_cyclic_subspace.py)
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# Machine-readable perf trajectory (BENCH_*.json)
# ---------------------------------------------------------------------------

#: Repository root — the BENCH_*.json trajectory files live at the top level
#: so the perf history of the repo is visible next to ROADMAP.md.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_json_path(name: str) -> str:
    """Canonical path of one benchmark's trajectory file."""
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


def write_bench_json(
    name: str,
    rows: "list[dict]",
    metadata: "dict | None" = None,
    path: "str | None" = None,
) -> str:
    """Write one benchmark's rows as a machine-readable trajectory file.

    The shared writer behind every ``BENCH_*.json``: committing the output
    turns each benchmark run into a point on the repo's perf trajectory, so
    later PRs can be gated against the recorded numbers instead of
    re-deriving a baseline.  Every knob that shaped the measurement must go
    in ``metadata`` — the writer records only environment facts it can
    vouch for (interpreter, machine, timestamp).  Rows pass through
    :func:`repro.serialization.json_sanitize`, so NumPy scalars are fine.
    Returns the path written.
    """
    from repro.serialization import json_sanitize

    payload = {
        "benchmark": name,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metadata": json_sanitize(metadata or {}),
        "rows": json_sanitize(rows),
    }
    path = path or bench_json_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def load_bench_json(name: str, path: "str | None" = None) -> "dict | None":
    """Load a recorded trajectory file, or ``None`` when absent."""
    path = path or bench_json_path(name)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def latency_percentiles(
    latencies_s: "list[float]", quantiles: "tuple[int, ...]" = (50, 99)
) -> dict:
    """Latency quantiles in milliseconds, keyed ``p50_ms``/``p99_ms``/...

    The HPC-AI500-style service rows report throughput alongside tail
    latency; this is the shared reduction from raw per-request seconds.
    """
    samples = np.asarray(latencies_s, dtype=float)
    if samples.size == 0:
        return {f"p{quantile}_ms": 0.0 for quantile in quantiles}
    return {
        f"p{quantile}_ms": round(float(np.percentile(samples, quantile)) * 1e3, 3)
        for quantile in quantiles
    }


def time_call(function, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock of one call (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def max_backend_error(
    dense_spec, subspace_spec, num_parameter_sets: int = 3, seed: int = 42
) -> float:
    """Max |dense - lifted subspace| amplitude error over random parameters."""
    subspace_map = subspace_spec.backend.subspace_map
    rng = np.random.default_rng(seed)
    num_parameters = len(dense_spec.initial_parameters)
    worst = 0.0
    for _ in range(num_parameter_sets):
        parameters = rng.uniform(-np.pi, np.pi, size=num_parameters)
        dense_state = dense_spec.evolve(parameters)
        lifted = subspace_map.lift_vector(subspace_spec.evolve(parameters))
        worst = max(worst, float(np.max(np.abs(dense_state - lifted))))
    return worst


def check_speedup_rows(
    rows: list[dict],
    large_case: str,
    size_key: str,
    target_speedup: float,
    tolerance: float,
) -> dict:
    """Shared roofline acceptance assertions; returns the large-case row.

    Every row must show backend agreement within ``tolerance``; the
    ``large_case`` row must have ``size_key`` at least 32x smaller than the
    Hilbert dimension (otherwise it does not exercise the compression the
    benchmark claims) and clear ``target_speedup``.  Callers append any
    benchmark-specific assertions to the returned row.
    """
    for row in rows:
        assert row["max_err"] <= tolerance, (
            f"{row['case']}: backends disagree by {row['max_err']:.2e}"
        )
    by_case = {row["case"]: row for row in rows}
    large = by_case[large_case]
    assert large[size_key] * 32 <= large["2^n"], f"large case is not {size_key} << 2^n"
    assert large["speedup"] >= target_speedup, (
        f"{large_case}: only {large['speedup']:.1f}x, wanted >= {target_speedup}x"
    )
    return large


def print_speedup_rows(rows: list[dict], title: str) -> None:
    """Render roofline rows with the shared column formatting."""
    from repro.analysis.report import print_table

    def fmt(key: str, value):
        if key == "max_err":
            return f"{value:.1e}"
        if key.endswith("ms/iter"):
            return f"{value:.3f}"
        if key.endswith("speedup"):
            return f"{value:.1f}x"
        return value

    print_table(
        [{key: fmt(key, value) for key, value in row.items()} for row in rows],
        title=title,
    )
